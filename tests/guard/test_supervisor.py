"""Escalation-ladder fault injection at the window level.

These tests drive :class:`~repro.guard.supervisor.SLOGuard` through its
sampler-probe protocol with hand-crafted windows — no simulator — so
each ladder rung (warn → tighten → quarantine), the hysteresis clock,
and the recovery path can be exercised deterministically and in
isolation. A fake control surface records what the guard did to it.
"""

import pytest

from repro.guard.supervisor import (
    DEFAULT_GUARD_INTERVAL,
    GuardConfig,
    GuardEvent,
    SLOGuard,
    _GuardProbe,
)

pytestmark = pytest.mark.guard

FREQ = 1e9


class FakeControl:
    """Records every supervisor action; mimics GuardedFlow's surface."""

    guard_controllable = True

    def __init__(self):
        self.limit_refs_per_sec = None
        self.suspended_until = 0.0
        self.rung = 0
        self.limits = []
        self.suspensions = []
        self.releases = 0

    def set_limit(self, refs_per_sec):
        self.limit_refs_per_sec = refs_per_sec
        self.limits.append(refs_per_sec)

    def suspend_until(self, clock):
        self.suspended_until = clock
        self.suspensions.append(clock)

    def release(self):
        self.limit_refs_per_sec = None
        self.suspended_until = 0.0
        self.releases += 1

    def stats(self):
        return {"limit_refs_per_sec": self.limit_refs_per_sec,
                "rung": self.rung}


class _Counters:
    def __init__(self, packets=0, l3_refs=0):
        self.packets = packets
        self.l3_refs = l3_refs


class _FakeFlowRun:
    def __init__(self, index, label, flow):
        self.index = index
        self.label = label
        self.flow = flow


class _FakeMachine:
    def __init__(self, flows):
        import types

        self.flows = flows
        self.spec = types.SimpleNamespace(freq_hz=FREQ)
        self.tracer = types.SimpleNamespace(active=False)
        self.metrics = None


class Harness:
    """One victim (SLO'd, uncontrollable) + one controllable aggressor."""

    def __init__(self, config=None, victim_slo=0.1,
                 baselines=True, n_aggressors=1):
        self.control = [FakeControl() for _ in range(n_aggressors)]
        flows = [_FakeFlowRun(0, "V", object())]
        flows += [_FakeFlowRun(1 + i, f"A{i}", self.control[i])
                  for i in range(n_aggressors)]
        base = {}
        if baselines:
            base["V"] = (1e6, 10e6)
            for i in range(n_aggressors):
                base[f"A{i}"] = (1e6, 10e6)
        self.guard = SLOGuard(
            slos={"V": victim_slo}, baselines=base,
            config=config or GuardConfig(backoff_cycles=1.0,
                                         quarantine_cycles=1e6))
        self.probe = _GuardProbe(self.guard)
        self.probe.begin(_FakeMachine(flows))
        self.clock = 0.0
        self.counters = [_Counters() for _ in flows]

    def window(self, d_clock=100_000.0, victim_pps=None, victim_drop=None,
               aggressor_refs_ratio=2.0):
        """Advance every flow by one window of ``d_clock`` cycles."""
        self.clock += d_clock
        seconds = d_clock / FREQ
        if victim_pps is None:
            drop = 0.0 if victim_drop is None else victim_drop
            victim_pps = 1e6 * (1.0 - drop)
        self.counters[0].packets += int(victim_pps * seconds)
        self.counters[0].l3_refs += int(10e6 * seconds)
        self.probe.sample(0, self.clock, self.counters[0])
        for i, c in enumerate(self.counters[1:], start=1):
            c.packets += int(1e6 * seconds)
            c.l3_refs += int(10e6 * aggressor_refs_ratio * seconds)
            self.probe.sample(i, self.clock, c)

    def actions(self, flow=None):
        return [e.action for e in self.guard.events
                if flow is None or e.flow == flow]


def test_ladder_warn_then_tighten_then_quarantine():
    h = Harness()
    h.window(victim_drop=0.0)   # skip_windows ramp-up
    for _ in range(8):
        h.window(victim_drop=0.3)
    acts = h.actions("A0")
    # deviation observed, then the full ladder in order.
    assert acts[0] == "deviation"
    assert acts[1:6] == ["warn", "tighten", "tighten", "tighten",
                         "quarantine"]
    ctrl = h.control[0]
    # Each tightening halves the previous limit.
    assert len(ctrl.limits) == 3
    assert ctrl.limits[1] == pytest.approx(ctrl.limits[0] * 0.5)
    assert ctrl.limits[2] == pytest.approx(ctrl.limits[1] * 0.5)
    assert ctrl.suspensions and ctrl.suspended_until > h.clock - 1
    # The mirror rung on the control surface tracks the guard's ladder.
    state = h.guard.states[1]
    assert ctrl.rung == state.rung == h.guard.config.max_tightenings + 2


def test_first_tighten_seeds_limit_from_live_rate():
    h = Harness()
    h.window()
    for _ in range(3):
        h.window(victim_drop=0.3)
    ctrl = h.control[0]
    # First limit = tighten_factor x the aggressor's live refs/sec (2x base).
    assert ctrl.limits[0] == pytest.approx(0.5 * 20e6, rel=0.01)


def test_tighten_respects_min_limit_floor():
    cfg = GuardConfig(backoff_cycles=1.0, max_tightenings=30,
                      min_limit_frac=0.2, quarantine_cycles=1e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(40):
        h.window(victim_drop=0.3)
    floor = 10e6 * 0.2
    assert h.control[0].limits, "ladder never tightened"
    assert min(h.control[0].limits) >= floor * (1 - 1e-12)


def test_hysteresis_blocks_back_to_back_tightening():
    # Real backoff: rung 1 needs 300k quiet cycles before the first
    # tighten, rung 2 needs 600k, so 100k-cycle windows cannot ladder up
    # on consecutive windows.
    cfg = GuardConfig(backoff_cycles=300_000.0, quarantine_cycles=1e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(3):
        h.window(victim_drop=0.3)
    acts = h.actions("A0")
    assert acts.count("warn") == 1
    assert acts.count("tighten") == 0  # still inside the quiet period
    h.window(victim_drop=0.3)
    assert h.actions("A0").count("tighten") == 1


def test_exponential_backoff_doubles_quiet_period():
    cfg = GuardConfig(backoff_cycles=150_000.0, quarantine_cycles=1e9)
    h = Harness(config=cfg)
    h.window()
    tighten_clocks = []
    for _ in range(40):
        h.window(victim_drop=0.3)
    for e in h.guard.events:
        if e.action == "tighten":
            tighten_clocks.append(e.clock)
    assert len(tighten_clocks) >= 2
    gaps = [b - a for a, b in zip(tighten_clocks, tighten_clocks[1:])]
    # rung 2 -> 3 must wait at least twice the rung 1 -> 2 quiet period.
    assert gaps[0] >= 300_000.0 - 1e-6
    assert all(b >= a * 2 - 1e-6 for a, b in zip(gaps, gaps[1:]))


def test_recovery_relaxes_then_restores():
    cfg = GuardConfig(backoff_cycles=1.0, recover_windows=2,
                      relax_factor=4.0, quarantine_cycles=1e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(3):
        h.window(victim_drop=0.3)
    ctrl = h.control[0]
    assert ctrl.limit_refs_per_sec is not None
    # Calm windows (drop well under slo * release_margin) trigger the
    # relax ladder: limit x4 per step until it clears the baseline.
    for _ in range(12):
        h.window(victim_drop=0.0, aggressor_refs_ratio=0.9)
        if ctrl.releases:
            break
    acts = h.actions("A0")
    assert "restore" in acts
    assert ctrl.releases == 1
    assert ctrl.limit_refs_per_sec is None
    assert h.guard.states[1].rung == 0 and ctrl.rung == 0
    # Post-restore the deviation episode may be reported afresh.
    assert not h.guard.states[1].deviant_reported


def test_relax_steps_before_restore():
    cfg = GuardConfig(backoff_cycles=1.0, recover_windows=1,
                      relax_factor=1.5, quarantine_cycles=1e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(4):
        h.window(victim_drop=0.3)
    before = h.control[0].limit_refs_per_sec
    h.window(victim_drop=0.0, aggressor_refs_ratio=0.9)
    acts = h.actions("A0")
    assert "relax" in acts
    assert h.control[0].limit_refs_per_sec == pytest.approx(before * 1.5)


def test_monitor_only_mode_never_contains():
    cfg = GuardConfig(backoff_cycles=1.0, enforce=False,
                      quarantine_cycles=1e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(6):
        h.window(victim_drop=0.3)
    assert h.actions("V").count("violation") == 6
    assert not any(a in ("warn", "tighten", "quarantine", "relax",
                         "restore") for a in h.actions())
    ctrl = h.control[0]
    assert ctrl.limits == [] and ctrl.suspensions == []
    # Monitor-only runs still fail the end-of-run verdict...
    assert not h.guard.ok
    # ...but every breach window was observed and recorded.
    assert h.guard.unhandled == []


def test_skip_windows_exempts_ramp_up():
    h = Harness(config=GuardConfig(backoff_cycles=1.0, skip_windows=2,
                                   quarantine_cycles=1e6))
    h.window(victim_drop=0.9)
    h.window(victim_drop=0.9)
    assert h.actions("V") == []  # both inside the ramp-up exemption
    h.window(victim_drop=0.9)
    assert h.actions("V") == ["violation"]


def test_self_calibration_emits_baseline_event():
    h = Harness(baselines=False)
    h.window()
    acts = {e.flow: e.action for e in h.guard.events}
    assert acts == {"V": "baseline", "A0": "baseline"}
    st = h.guard.states[0]
    assert st.baseline_pps == pytest.approx(1e6, rel=0.01)
    # Later deviation is judged against the calibrated baseline.
    for _ in range(3):
        h.window(aggressor_refs_ratio=4.0)
    assert "deviation" in h.actions("A0")


def test_deviation_reported_once_per_episode():
    h = Harness()
    h.window()
    for _ in range(5):
        h.window(victim_drop=0.05)  # calm victim, deviant aggressor
    assert h.actions("A0").count("deviation") == 1


def test_unhandled_flags_unobserved_breaches():
    h = Harness()
    h.window()
    h.window(victim_drop=0.3)
    assert h.guard.unhandled == []
    # Fault injection: pretend a breach window produced no event.
    h.guard.states[0].breach_windows += 1
    assert h.guard.unhandled and "V" in h.guard.unhandled[0]
    assert not h.guard.ok


def test_quarantine_not_extended_while_active():
    cfg = GuardConfig(backoff_cycles=1.0, quarantine_cycles=5e6)
    h = Harness(config=cfg)
    h.window()
    for _ in range(12):
        h.window(victim_drop=0.3)
    assert len(h.control[0].suspensions) == 1


def test_escalation_targets_only_deviant_controllables():
    # Aggressor 0 deviates, aggressor 1 stays on profile: only 0 climbs.
    h = Harness(n_aggressors=2)

    def window(drop):
        h.clock += 100_000.0
        seconds = 100_000.0 / FREQ
        h.counters[0].packets += int(1e6 * (1 - drop) * seconds)
        h.counters[0].l3_refs += int(10e6 * seconds)
        h.probe.sample(0, h.clock, h.counters[0])
        for i, ratio in ((1, 3.0), (2, 1.0)):
            h.counters[i].packets += int(1e6 * seconds)
            h.counters[i].l3_refs += int(10e6 * ratio * seconds)
            h.probe.sample(i, h.clock, h.counters[i])

    window(0.0)
    for _ in range(4):
        window(0.3)
    assert "warn" in h.actions("A0")
    assert h.actions("A1") == []
    assert h.control[1].limits == []


def test_probe_without_sampler_runs_its_own_schedule():
    h = Harness()
    assert h.probe.next_due == [DEFAULT_GUARD_INTERVAL] * 2
    h.window(d_clock=DEFAULT_GUARD_INTERVAL)
    assert h.probe.next_due[0] == pytest.approx(2 * DEFAULT_GUARD_INTERVAL)


def test_probe_stacks_on_an_inner_sampler():
    calls = []

    class InnerSampler:
        def __init__(self):
            self.next_due = [123.0]

        def begin(self, machine):
            calls.append(("begin",))

        def sample(self, i, clock, counters):
            calls.append(("sample", i))
            self.next_due[i] = clock + 500.0

        def finish(self, flows):
            calls.append(("finish",))

    inner = InnerSampler()
    guard = SLOGuard(slos={}, baselines={})
    probe = _GuardProbe(guard, inner)
    assert probe.inner is inner
    machine = _FakeMachine([_FakeFlowRun(0, "V", object())])
    probe.begin(machine)
    # The probe aliases (not copies) the inner sampler's schedule.
    assert probe.next_due is inner.next_due
    probe.sample(0, 1000.0, _Counters(packets=10, l3_refs=10))
    probe.finish([])
    assert calls == [("begin",), ("sample", 0), ("finish",)]
    assert probe.next_due[0] == 1500.0


def test_guard_event_round_trips_and_prints():
    e = GuardEvent(clock=12.0, flow="V", action="warn", rung=1,
                   detail={"x": 1})
    assert e.to_dict() == {"clock": 12.0, "flow": "V", "action": "warn",
                           "rung": 1, "detail": {"x": 1}}
    assert "[guard] warn V rung=1" in str(e)


@pytest.mark.parametrize("kwargs", [
    {"interval_cycles": 0},
    {"deviation_tolerance": 1.0},
    {"tighten_factor": 1.0},
    {"tighten_factor": 0.0},
    {"max_tightenings": 0},
    {"backoff_cycles": -1.0},
    {"quarantine_cycles": 0.0},
    {"relax_factor": 1.0},
    {"release_margin": 0.0},
    {"release_margin": 1.5},
    {"skip_windows": -1},
    {"calibrate_windows": 0},
])
def test_config_validation(kwargs):
    with pytest.raises(ValueError):
        GuardConfig(**kwargs)


def test_payload_carries_schema_and_events():
    h = Harness()
    h.window()
    h.window(victim_drop=0.3)
    doc = h.guard.payload()
    assert doc["schema"] == "repro.guard_report/1"
    assert doc["contained"] is (h.guard.last_containment_clock is not None)
    assert doc["unhandled"] == []
    assert any(ev["action"] == "violation" for ev in doc["events"])
    labels = [row["label"] for row in doc["flows"]]
    assert labels == ["V", "A0"]
