"""SLO-guard suite: admission, escalation ladder, containment, fuzz."""
