"""GuardedFlow control surface and SLO declarations (unit level)."""

from types import SimpleNamespace

import pytest

from repro.guard.slo import FlowSLO, parse_slo, slo_map
from repro.guard.wrappers import GuardedFlow, guarded_factory

pytestmark = pytest.mark.guard


class _InertFlow:
    name = "inert"

    def run_packet(self, ctx):
        return None


class _Ctx:
    def __init__(self):
        self.computed = []
        self.idled = []

    def compute(self, ops, refs):
        self.computed.append((ops, refs))

    def mark_idle(self, stall):
        self.idled.append(stall)


def make_guarded(adjust_every=4, gain=0.6):
    flow = GuardedFlow(_InertFlow(), adjust_every=adjust_every, gain=gain)
    fr = SimpleNamespace(counters=SimpleNamespace(l3_refs=0), clock=0.0)
    machine = SimpleNamespace(spec=SimpleNamespace(freq_hz=1e9))
    flow.attach_run(machine, fr)
    return flow, fr


def test_identity_never_aliases_the_inner_flow():
    flow = GuardedFlow(_InertFlow())
    assert flow.name == "guarded(inert)"
    assert flow.stream_signature is None
    assert flow.timing_pure is False
    assert flow.guard_controllable is True


def test_construction_validation():
    with pytest.raises(ValueError):
        GuardedFlow(_InertFlow(), adjust_every=0)
    with pytest.raises(ValueError):
        GuardedFlow(_InertFlow(), idle_stall=0)


def test_control_surface_validation():
    flow, _ = make_guarded()
    with pytest.raises(ValueError):
        flow.set_limit(0)
    with pytest.raises(ValueError):
        flow.suspend_until(-1.0)


def test_unlimited_flow_never_adjusts():
    flow, fr = make_guarded(adjust_every=1)
    ctx = _Ctx()
    for _ in range(8):
        fr.counters.l3_refs += 10
        fr.clock += 1000.0
        flow.run_packet(ctx)
    assert flow.adjustments == 0
    assert flow.extra_gap == 0.0
    assert not flow.stats()["engaged"]


def test_set_limit_resets_feedback_window():
    flow, fr = make_guarded(adjust_every=1)
    fr.counters.l3_refs = 1000
    fr.clock = 50_000.0
    flow.set_limit(1e6)
    assert flow.limit_refs_per_sec == 1e6
    assert flow.limit_changes == 1
    # The window starts at "now": history before set_limit is invisible.
    assert flow._last_refs == 1000 and flow._last_clock == 50_000.0


def test_throttle_engages_above_limit():
    flow, fr = make_guarded(adjust_every=1, gain=0.6)
    flow.set_limit(1e6)
    ctx = _Ctx()
    # 10x the limit: 10 refs / 1000 cycles at 1 GHz = 1e7 refs/s.
    fr.counters.l3_refs += 10
    fr.clock += 1000.0
    flow.run_packet(ctx)
    assert flow.adjustments == 1
    assert flow.extra_gap == pytest.approx(0.6 * 9 * 1000)
    assert flow.stats()["engaged"]
    # The accumulated gap is inserted before the next packet.
    flow.run_packet(ctx)
    gap = int(flow.extra_gap)
    assert ctx.computed[0] == (gap, max(2, gap // 2))


def test_quarantine_emits_idle_packets_only():
    flow, fr = make_guarded()
    inner_calls = []
    flow.inner.run_packet = lambda ctx: inner_calls.append(1)
    flow.suspend_until(5_000.0)
    ctx = _Ctx()
    fr.clock = 0.0
    flow.run_packet(ctx)
    assert inner_calls == []            # no work done ...
    assert ctx.idled == [flow.idle_stall]  # ... but time advances
    assert flow.idle_packets == 1
    fr.clock = 5_000.0                  # deadline reached: flow resumes
    flow.run_packet(ctx)
    assert len(inner_calls) == 1
    assert flow.suspensions == 1


def test_release_clears_every_restriction():
    flow, _ = make_guarded()
    flow.set_limit(1e6)
    flow.extra_gap = 123.0
    flow.suspend_until(9e9)
    flow.release()
    assert flow.limit_refs_per_sec is None
    assert flow.extra_gap == 0.0
    assert flow.suspended_until == 0.0


def test_finish_run_flushes_partial_window_and_forwards():
    flow, fr = make_guarded(adjust_every=1000)
    inner_finished = []
    flow.inner.finish_run = lambda: inner_finished.append(1)
    flow.set_limit(1e6)
    ctx = _Ctx()
    for _ in range(5):
        fr.counters.l3_refs += 10
        fr.clock += 1000.0
        flow.run_packet(ctx)
    assert flow.adjustments == 0        # adjust_every > packet count
    flow.finish_run()
    assert flow.adjustments == 1        # end-of-run flush engaged it
    assert inner_finished == [1]


def test_guarded_factory_wraps_the_inner_factory():
    def inner_factory(env):
        assert env == "ENV"
        return _InertFlow()

    flow = guarded_factory(inner_factory, adjust_every=7)("ENV")
    assert isinstance(flow, GuardedFlow)
    assert flow.adjust_every == 7


# -- SLO declarations ---------------------------------------------------------

def test_flow_slo_validation():
    with pytest.raises(ValueError):
        FlowSLO("", 0.1)
    with pytest.raises(ValueError):
        FlowSLO("X", 1.0)
    with pytest.raises(ValueError):
        FlowSLO("X", -0.01)
    assert FlowSLO("X", 0.0).max_drop == 0.0


def test_parse_slo():
    slo = parse_slo("IP@0=0.10")
    assert slo == FlowSLO("IP@0", 0.10)
    with pytest.raises(ValueError):
        parse_slo("IP@0")
    with pytest.raises(ValueError):
        parse_slo("=0.1")
    with pytest.raises(ValueError):
        parse_slo("IP@0=ten")


def test_slo_map_accepts_every_shape():
    want = {"A": 0.1, "B": 0.2}
    assert slo_map(want) == want
    assert slo_map([FlowSLO("A", 0.1), FlowSLO("B", 0.2)]) == want
    assert slo_map([("A", 0.1), ("B", 0.2)]) == want
    with pytest.raises(ValueError):
        slo_map([("A", 2.0)])
