"""The two-faced containment demo: acceptance numbers and golden replay.

One profiling pass drives both demo runs. The guarded run must land the
victim back inside its SLO (within the prediction-error margin) after
containment; the unguarded comparison must measurably violate it. Both
runs are committed as ``kind="guard"`` golden reports and replayed
byte-stably — under the batch engine too.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.fastpath as fastpath
from repro.guard.demo import CONTAINMENT_MARGIN, DemoConfig, victim_verdict
from repro.guard.supervisor import CONTAINMENT_ACTIONS
from repro.obs.report import validate_report

from . import builders

pytestmark = pytest.mark.guard

GOLDEN_DIR = os.path.dirname(os.path.abspath(__file__))


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"golden_{name}.json")


@pytest.fixture(scope="module")
def runs():
    return builders.build_runs()


@pytest.fixture(scope="module")
def batch_reports():
    fastpath.clear_stream_cache()
    with fastpath.use_engine("batch"):
        return builders.build_reports()


def test_admission_admits_the_declared_mix(runs):
    # The aggressors present innocent profiles: per the offline numbers
    # the mix genuinely fits, so admission (correctly) lets it in. The
    # lie only becomes visible at runtime.
    decision, _, _, _ = runs["demo_guarded"]
    assert decision.admitted
    victim = decision.flows[0]
    assert victim["label"] == DemoConfig().victim_label
    assert victim["headroom"] > 0


def test_guarded_victim_lands_within_slo(runs):
    _, guard, _, _ = runs["demo_guarded"]
    config = DemoConfig(guarded=True)
    verdict = victim_verdict(guard, config)
    assert verdict["contained"], "the ladder never fired"
    assert verdict["drop_post_containment"] is not None
    # The acceptance bound: post-containment drop within SLO +/- the
    # prediction-error margin (3 pp).
    assert verdict["drop_post_containment"] <= config.slo + \
        CONTAINMENT_MARGIN
    assert verdict["within_slo"]
    assert guard.unhandled == []


def test_guarded_run_walks_the_ladder(runs):
    _, guard, _, _ = runs["demo_guarded"]
    actions = [e.action for e in guard.events]
    assert "deviation" in actions     # two-faced flows detected ...
    assert "violation" in actions     # ... the victim's SLO breached ...
    assert "warn" in actions          # ... and the ladder walked
    assert "tighten" in actions
    assert any(a in CONTAINMENT_ACTIONS for a in actions)
    # Graceful degradation: pressure subsides, restrictions lift.
    assert "restore" in actions
    deviants = {e.flow for e in guard.events if e.action == "deviation"}
    assert deviants <= set(DemoConfig().aggressor_labels)


def test_unguarded_victim_violates_its_slo(runs):
    _, guard, _, _ = runs["demo_unguarded"]
    config = DemoConfig(guarded=False)
    verdict = victim_verdict(guard, config)
    assert verdict["drop_overall"] is not None
    assert verdict["drop_overall"] > config.slo
    assert not verdict["contained"]
    assert guard.last_containment_clock is None
    actions = {e.action for e in guard.events}
    assert "violation" in actions
    assert not actions & set(CONTAINMENT_ACTIONS)
    # Monitor-only still observes every breach (nothing unhandled) ...
    assert guard.unhandled == []
    # ... but the end-of-run verdict fails.
    assert not guard.ok


def test_guarded_strictly_better_than_unguarded(runs):
    guarded = victim_verdict(runs["demo_guarded"][1],
                             DemoConfig(guarded=True))
    unguarded = victim_verdict(runs["demo_unguarded"][1],
                               DemoConfig(guarded=False))
    assert guarded["drop_overall"] < unguarded["drop_overall"]


def test_goldens_exist_and_validate():
    for name in builders.GOLDEN_NAMES:
        path = golden_path(name)
        assert os.path.exists(path), (
            f"missing {path}; run PYTHONPATH=src python tests/guard/regen.py")
        with open(path) as fh:
            doc = json.load(fh)
        validate_report(doc)
        assert doc["kind"] == "guard"
        assert doc["results"]["schema"] == "repro.guard_report/1"
        assert doc["results"]["enforce"] is (name == "demo_guarded")
        assert doc["results"]["unhandled"] == []
        assert doc["results"]["admission"]["admitted"] is True


@pytest.mark.parametrize("name", builders.GOLDEN_NAMES)
def test_reports_replay_byte_stable(name, runs):
    with open(golden_path(name)) as fh:
        committed = fh.read()
    fresh = runs[name][3].to_json() + "\n"
    assert fresh == committed, (
        f"{name} drifted from its golden; if intentional, regenerate with "
        f"PYTHONPATH=src python tests/guard/regen.py and review the diff")


@pytest.mark.parametrize("name", builders.GOLDEN_NAMES)
def test_batch_engine_matches_goldens(name, batch_reports):
    with open(golden_path(name)) as fh:
        committed = fh.read()
    assert batch_reports[name] == committed, (
        f"{name}: batch engine diverged from the scalar-produced golden")
