"""Predictive admission control: headroom, rejection, counter-proposals."""

import pytest

from repro.core.prediction import ContentionPredictor, SensitivityCurve
from repro.core.profiler import SoloProfile
from repro.core.scheduling import enumerate_partitions
from repro.guard.admission import (
    MAX_PLACEMENT_PROPOSALS,
    AdmissionController,
    AdmissionDecision,
    FlowRequest,
)
from repro.hw.topology import PlatformSpec

pytestmark = pytest.mark.guard


def profile(app, refs, throughput=3e6):
    return SoloProfile(
        app=app, throughput=throughput, cycles_per_instruction=1.4,
        l3_refs_per_sec=refs, l3_hits_per_sec=refs * 0.75,
        cycles_per_packet=900, l3_refs_per_packet=6,
        l3_misses_per_packet=1.5, l2_hits_per_packet=2,
    )


def make_predictor():
    """SENS drops fast with competition; CHEAP barely reacts."""
    profiles = {
        "SENS": profile("SENS", refs=20e6),
        "CHEAP": profile("CHEAP", refs=5e6),
    }
    curves = {
        "SENS": SensitivityCurve("SENS", [(10e6, 0.10), (40e6, 0.40)]),
        "CHEAP": SensitivityCurve("CHEAP", [(10e6, 0.01), (40e6, 0.04)]),
    }
    return ContentionPredictor(profiles=profiles, curves=curves)


def controller():
    return AdmissionController(make_predictor(), PlatformSpec.westmere())


def test_admits_when_every_slo_has_headroom():
    ctl = controller()
    # CHEAP competes with 5e6 refs/s -> SENS predicted drop 5%.
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.10),
        FlowRequest("CHEAP", 1),
    ])
    assert decision.admitted
    row = decision.flows[0]
    assert row["label"] == "SENS@0"
    assert row["predicted_drop"] == pytest.approx(0.05)
    assert row["headroom"] == pytest.approx(0.05)
    assert row["ok"]
    # Flows without an SLO report their prediction but cannot veto.
    assert decision.flows[1]["slo"] is None
    assert decision.flows[1]["headroom"] is None
    assert decision.proposals == []
    assert "mix admitted" in decision.describe()


def test_only_same_socket_competitors_count():
    ctl = controller()
    spec = ctl.spec
    other_socket = spec.cores_per_socket  # first core of socket 1
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.02),
        FlowRequest("SENS", other_socket),
    ])
    # Cross-socket: zero L3 competition, zero predicted drop.
    assert decision.admitted
    assert decision.flows[0]["predicted_drop"] == pytest.approx(0.0)


def test_rejects_and_reports_negative_headroom():
    ctl = controller()
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.10),
        FlowRequest("SENS", 1),  # 20e6 competing -> 20% predicted drop
    ])
    assert not decision.admitted
    row = decision.flows[0]
    assert row["predicted_drop"] == pytest.approx(0.20)
    assert row["headroom"] == pytest.approx(-0.10)
    assert not row["ok"]
    assert "REJECTED" in decision.describe()


def test_rejection_proposes_feasible_placement():
    ctl = controller()
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.10),
        FlowRequest("SENS", 1),
    ])
    placements = [p for p in decision.proposals
                  if p["kind"] == "placement"]
    assert placements, "expected an alternative-placement proposal"
    assert len(placements) <= MAX_PLACEMENT_PROPOSALS
    best = placements[0]
    # Splitting the two SENS flows across sockets removes the violation.
    groups = [set(g) for g in best["assignment"]]
    assert {"SENS@0"} in groups and {"SENS@1"} in groups
    assert best["min_headroom"] >= 0.0
    # Ranked best headroom first.
    heads = [p["min_headroom"] for p in placements]
    assert heads == sorted(heads, reverse=True)
    assert "proposal: place" in decision.describe()


def test_rejection_proposes_throttle_targets():
    ctl = controller()
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.10),
        FlowRequest("SENS", 1),
        FlowRequest("CHEAP", 2),
    ])
    assert not decision.admitted
    throttles = [p for p in decision.proposals if p["kind"] == "throttle"]
    assert len(throttles) == 1
    prop = throttles[0]
    # SENS@0's curve crosses 10% drop at 10e6 competing refs/s; the mix
    # brings 25e6, so competitors must scale to 10/25.
    assert prop["scale"] == pytest.approx(10e6 / 25e6)
    # The victim itself is never throttled; both competitors are.
    assert set(prop["targets"]) == {"SENS@1", "CHEAP@2"}
    assert prop["targets"]["SENS@1"] == pytest.approx(20e6 * prop["scale"])
    assert prop["targets"]["CHEAP@2"] == pytest.approx(5e6 * prop["scale"])
    assert "proposal: throttle" in decision.describe()


def test_no_throttle_proposal_without_competition():
    # An SLO so tight even zero competition violates it can only happen
    # with a curve anchored above the SLO; with a lone flow on the
    # socket the predicted drop is 0, so craft a two-flow case where
    # the victim's whole drop comes from an uncontrollable amount.
    predictor = make_predictor()
    ctl = AdmissionController(predictor, PlatformSpec.westmere())
    decision = ctl.evaluate([
        FlowRequest("SENS", 0, slo=0.10),
        FlowRequest("SENS", 1, slo=0.10),
    ])
    # Both violate symmetrically; throttling "the others" means
    # throttling another victim — targets exclude victims, and with no
    # non-victim competitors no throttle proposal survives.
    throttles = [p for p in decision.proposals if p["kind"] == "throttle"]
    assert throttles == []


def test_validation_rejects_bad_mixes():
    ctl = controller()
    with pytest.raises(ValueError):
        ctl.evaluate([])
    with pytest.raises(ValueError):
        ctl.evaluate([FlowRequest("SENS", 0), FlowRequest("CHEAP", 0)])
    with pytest.raises(ValueError):
        ctl.evaluate([FlowRequest("SENS", ctl.spec.total_cores)])


def test_flow_request_validation_and_naming():
    with pytest.raises(ValueError):
        FlowRequest("X", -1)
    with pytest.raises(ValueError):
        FlowRequest("X", 0, slo=1.0)
    with pytest.raises(ValueError):
        FlowRequest("X", 0, slo=-0.1)
    assert FlowRequest("X", 3).name == "X@3"
    assert FlowRequest("X", 3, label="custom").name == "custom"


def test_decision_round_trips_to_dict():
    decision = AdmissionDecision(
        admitted=False,
        flows=[{"label": "a", "slo": 0.1, "predicted_drop": 0.2,
                "headroom": -0.1, "ok": False}],
        proposals=[{"kind": "throttle", "scale": 0.5, "targets": {}}])
    doc = decision.to_dict()
    assert doc["admitted"] is False
    assert doc["flows"][0]["label"] == "a"
    # to_dict copies: mutating the document must not touch the decision.
    doc["flows"][0]["label"] = "b"
    assert decision.flows[0]["label"] == "a"


# -- enumerate_partitions (the placement search primitive) --------------------

def canon(groups):
    return tuple(sorted(tuple(sorted(g)) for g in groups))


def test_enumerate_partitions_covers_all_splits():
    parts = list(enumerate_partitions(["a", "b", "c", "d"], 2, 2))
    # 4 flows over 2 sockets of 2 cores: 3 distinct unordered splits.
    assert len(parts) == 3
    assert len({canon(p) for p in parts}) == 3
    for p in parts:
        assert sorted(x for g in p for x in g) == ["a", "b", "c", "d"]
        assert all(len(g) <= 2 for g in p)


def test_enumerate_partitions_allows_slack():
    parts = list(enumerate_partitions(["a", "b"], 2, 2))
    # With room to spare both the split and the colocated layouts appear.
    assert any(all(len(g) <= 1 for g in p) for p in parts)
    assert any(any(len(g) == 2 for g in p) for p in parts)


def test_enumerate_partitions_rejects_overflow():
    with pytest.raises(ValueError):
        list(enumerate_partitions(["a", "b", "c"], 1, 2))
