"""Random-SLO guard fuzz: determinism, the no-unhandled contract, sweep task."""

import json

import pytest

from repro.check.scenarios import generate_one
from repro.guard.fuzz import (
    SLO_LEVELS,
    GuardFuzzOptions,
    assign_slos,
    fuzz_one,
    guard_scenario_payload,
    run_fuzz,
)
from repro.sweep.tasks import run_task

pytestmark = pytest.mark.guard

SEED = 0x5EED


def test_small_campaign_is_clean():
    result = run_fuzz(GuardFuzzOptions(scenarios=4, seed=SEED))
    assert len(result.outcomes) == 4
    assert result.ok, result.summary()
    assert result.failures == []
    # The campaign did actually observe windows and assign SLOs.
    assert sum(o.windows for o in result.outcomes) > 0
    assert any(o.slos for o in result.outcomes)
    for o in result.outcomes:
        assert o.unhandled == []
        assert o.crash is None and o.mismatch is None
        assert o.engines == ("scalar", "batch")


def test_campaign_is_deterministic():
    a = run_fuzz(GuardFuzzOptions(scenarios=3, seed=SEED))
    b = run_fuzz(GuardFuzzOptions(scenarios=3, seed=SEED))
    assert [o.to_dict() for o in a.outcomes] == \
        [o.to_dict() for o in b.outcomes]
    assert a.summary() == b.summary()


def test_campaign_report_shape():
    result = run_fuzz(GuardFuzzOptions(scenarios=2, seed=SEED))
    report = result.report(command="unit test")
    assert report.kind == "guard"
    doc = json.loads(report.to_json())
    assert doc["results"]["schema"] == "repro.guard_report/1"
    assert doc["results"]["mode"] == "fuzz"
    assert doc["results"]["ok"] is True
    assert len(doc["results"]["scenarios"]) == 2
    assert doc["config"]["scenarios"] == 2


def test_assign_slos_is_deterministic_and_bounded():
    config = generate_one(SEED, 0)
    labels = [f"F{i}" for i in range(12)]
    a = assign_slos(config, labels)
    b = assign_slos(config, labels)
    assert a == b
    assert set(a) <= set(labels)
    assert all(v in SLO_LEVELS for v in a.values())
    # A different scenario seed draws a different assignment stream.
    other = assign_slos(generate_one(SEED, 5), labels)
    assert other != a or generate_one(SEED, 5).seed == config.seed


def test_fuzz_one_single_engine_skips_cross_check():
    outcome = fuzz_one(generate_one(SEED, 1), engines=("scalar",))
    assert outcome.ok
    assert outcome.mismatch is None


def test_guard_scenario_sweep_task_round_trips():
    config = generate_one(SEED, 2)
    direct = guard_scenario_payload(config, engine="scalar")
    via_task = run_task("guard_scenario",
                        {"config": config.to_dict(), "engine": "scalar"})
    assert json.loads(json.dumps(via_task)) == \
        json.loads(json.dumps(direct))
    assert via_task["digest"] == config.digest()
    assert via_task["unhandled"] == [] and via_task["violations"] == []
    assert via_task["windows"] > 0
