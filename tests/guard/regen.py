#!/usr/bin/env python
"""Regenerate the committed guard golden reports.

Usage (from the repository root)::

    PYTHONPATH=src python tests/guard/regen.py [--out DIR]

Rewrites ``tests/guard/golden_<name>.json`` for the guarded and
unguarded containment-demo runs (or writes them into ``DIR``, leaving
the committed goldens untouched). Only regenerate the committed files
when a change *intends* to move the guard's behaviour; the diff is the
review artifact.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

try:
    from . import builders
except ImportError:  # executed as a script, not a package module
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import builders  # type: ignore[no-redef]


def regen(out_dir: str, quiet: bool = False) -> List[str]:
    """Write both golden reports into ``out_dir``; the paths written."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for name, text in builders.build_reports().items():
        path = os.path.join(out_dir, f"golden_{name}.json")
        with open(path, "w") as fh:
            fh.write(text)
        paths.append(path)
        if not quiet:
            print(f"wrote {path} ({len(text)} bytes)", file=sys.stderr)
    return paths


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", metavar="DIR",
        default=os.path.dirname(os.path.abspath(__file__)),
        help="directory to write into (default: the committed goldens)")
    args = parser.parse_args(argv)
    regen(args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
