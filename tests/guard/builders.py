"""Deterministic builders for the guard's golden containment reports.

One seed-pinned two-faced scenario is run twice — guarded (the
escalation ladder enforces) and unguarded (monitor only) — sharing a
single offline profiling pass. The resulting ``kind="guard"`` RunReport
documents are committed next to this module and asserted byte-stable by
``test_containment.py``. Regenerate deliberately with::

    PYTHONPATH=src python tests/guard/regen.py
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.guard.demo import DemoConfig, build_demo_predictor, run_demo

GOLDEN_NAMES = ("demo_guarded", "demo_unguarded")


def build_runs() -> Dict[str, Tuple]:
    """name -> ``(decision, guard, result, report)`` for both demo runs."""
    guarded_config = DemoConfig(guarded=True)
    predictor = build_demo_predictor(guarded_config)
    return {
        "demo_guarded": run_demo(guarded_config, predictor=predictor),
        "demo_unguarded": run_demo(DemoConfig(guarded=False),
                                   predictor=predictor),
    }


def build_reports() -> Dict[str, str]:
    """name -> RunReport JSON text for both committed goldens."""
    return {name: run[3].to_json() + "\n"
            for name, run in build_runs().items()}
