"""The ``repro-guard`` CLI: parsing, mode selection, exit codes."""

import json

import pytest

from repro.guard.cli import build_parser, main

pytestmark = pytest.mark.guard

SEED = 0x5EED


def test_parser_rejects_bad_values():
    parser = build_parser()
    for argv in (
        ["--slo", "IP@0"],          # missing fraction
        ["--slo", "IP@0=2.0"],      # out of range
        ["--mix", "IP"],            # missing core
        ["--mix", "IP:x"],          # non-integer core
        ["--mix", ""],              # empty
        ["--fuzz", "0"],            # not positive
        ["--seed", "zz"],           # not a number
        ["--interval", "-5"],       # not positive
        ["--engine", "warp"],       # unknown engine
        ["--inject", "three-faced"],  # unknown injection
    ):
        with pytest.raises(SystemExit) as err:
            parser.parse_args(argv)
        assert err.value.code == 2, argv


def test_parser_accepts_hex_seed_and_mix():
    args = build_parser().parse_args(
        ["--mix", "IP:0,MON:1", "--slo", "IP@0=0.1", "--seed", "0x5EED"])
    assert args.mix == [("IP", 0), ("MON", 1)]
    assert args.seed == 0x5EED
    assert args.slo[0].label == "IP@0"


def test_modes_are_mutually_exclusive(capsys):
    assert main(["--mix", "IP:0", "--fuzz", "1"]) == 2
    assert main(["--fuzz", "1", "--inject", "two-faced"]) == 2
    assert "choose one of" in capsys.readouterr().err


def test_mix_rejects_slo_for_unknown_flow(capsys):
    assert main(["--mix", "IP:0", "--slo", "FW@3=0.1"]) == 2
    err = capsys.readouterr().err
    assert "FW@3" in err and "IP@0" in err


def test_fuzz_mode_end_to_end(tmp_path, capsys):
    out = tmp_path / "fuzz.json"
    code = main(["--fuzz", "1", "--seed", hex(SEED), "--engine", "scalar",
                 "--report", str(out)])
    assert code == 0
    assert "guard fuzz: 1 scenario(s)" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["kind"] == "guard"
    assert doc["seed"] == SEED
    assert doc["results"]["mode"] == "fuzz"
    assert doc["results"]["ok"] is True
    assert doc["command"].startswith("repro-guard --fuzz 1")


def test_fuzz_mode_json_output(capsys):
    code = main(["--fuzz", "1", "--seed", hex(SEED), "--engine", "scalar",
                 "--json"])
    assert code == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["results"]["schema"] == "repro.guard_report/1"
