"""Report formatting helpers."""

from repro.core.reporting import format_series, format_table, millions, pct


def test_format_table_basic():
    out = format_table(["name", "value"], [["a", 1.5], ["bb", 22.0]],
                       title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "a" in lines[3]
    assert "bb" in lines[4]


def test_format_table_aligns_columns():
    out = format_table(["x"], [["short"], ["a-much-longer-cell"]])
    lines = out.splitlines()
    assert len(lines[1]) >= len("a-much-longer-cell")


def test_format_table_number_formats():
    out = format_table(["v"], [[2_500_000.0], [123.456], [0.25]])
    assert "2,500,000" in out
    assert "123.5" in out
    assert "0.250" in out


def test_format_series():
    out = format_series("s", [(1.0, 2.0), (3.0, 4.0)], x_label="a",
                        y_label="b")
    assert out.splitlines()[0] == "s: a -> b"
    assert "(1.000, 2.000)" in out


def test_pct():
    assert pct(0.123456) == "12.35%"
    assert pct(0.0) == "0.00%"


def test_millions():
    assert millions(25_850_000) == "25.85M"
