"""IP forwarding elements: lookup and TTL/checksum."""

import pytest

from repro.apps.ipforward import DecIPTTL, RadixIPLookup
from repro.apps.radixtrie import RadixTrie
from repro.mem.access import AccessContext
from repro.net.checksum import internet_checksum
from repro.net.packet import Packet
from tests.conftest import make_env


def make_lookup(routes):
    trie = RadixTrie()
    for prefix, plen, hop in routes:
        trie.insert(prefix, plen, hop)
    element = RadixIPLookup(trie=trie)
    element.initialize(make_env())
    return element


def test_lookup_annotates_next_hop():
    element = make_lookup([(0x0A000000, 8, 3)])
    pkt = Packet.udp(src=1, dst=0x0A010203)
    out = element.process(AccessContext(), pkt)
    assert out.annotations["next_hop"] == 3
    assert element.lookups == 1


def test_lookup_drops_unroutable():
    element = make_lookup([(0x0A000000, 8, 3)])
    pkt = Packet.udp(src=1, dst=0x0B000000)
    assert element.process(AccessContext(), pkt) is None
    assert element.no_route == 1


def test_lookup_records_trie_references():
    element = make_lookup([(0x0A000000, 8, 1), (0x0A010000, 16, 2)])
    ctx = AccessContext()
    element.process(ctx, Packet.udp(src=1, dst=0x0A010203))
    region_lines = set(range(element.region.base >> 6,
                             element.region.end >> 6))
    assert ctx.n_references >= 2
    assert all(line in region_lines for line in ctx.lines_touched())


def test_lookup_builds_scaled_table_by_default():
    env = make_env()
    element = RadixIPLookup()
    element.initialize(env)
    assert element.trie.n_routes >= env.spec.scale_table(128_000)
    assert element.region.size == \
        ((element.trie.total_bytes + 63) // 64) * 64


def test_lookup_requires_initialize():
    with pytest.raises(RuntimeError):
        RadixIPLookup().process(AccessContext(), Packet.udp(src=1, dst=2))


def test_dec_ttl_decrements_and_updates_checksum():
    element = DecIPTTL()
    pkt = Packet.udp(src=1, dst=2, ttl=64, compute_checksum=True)
    assert pkt.ip.is_valid()
    out = element.process(AccessContext(), pkt)
    assert out.ip.ttl == 63
    # The incrementally updated checksum must equal a full recompute.
    assert out.ip.checksum == out.ip.compute_checksum()
    assert out.ip.is_valid()


def test_dec_ttl_drops_expiring():
    element = DecIPTTL()
    pkt = Packet.udp(src=1, dst=2, ttl=1)
    assert element.process(AccessContext(), pkt) is None
    assert element.expired == 1


def test_dec_ttl_offloaded_checksum_untouched():
    element = DecIPTTL()
    pkt = Packet.udp(src=1, dst=2, ttl=10)
    out = element.process(AccessContext(), pkt)
    assert out.ip.checksum == 0


def test_dec_ttl_repeated_hops():
    element = DecIPTTL()
    pkt = Packet.udp(src=1, dst=2, ttl=5, compute_checksum=True)
    hops = 0
    while True:
        out = element.process(AccessContext(), pkt)
        if out is None:
            break
        hops += 1
        assert out.ip.is_valid()
    assert hops == 4
