"""Metrics layer: time series consistency with run aggregates."""

import pytest

from repro.apps.registry import app_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.obs import FlowSeries, MetricsSampler, percentile

WARM, MEAS = 200, 400


def _spec():
    return PlatformSpec.westmere().scaled(64).single_socket()


def _sampled_run(interval_us=20.0, apps=("MON", "IP")):
    sampler = MetricsSampler(interval_us=interval_us)
    machine = Machine(_spec(), seed=11, metrics=sampler)
    for core, app in enumerate(apps):
        machine.add_flow(app_factory(app), core=core)
    result = machine.run(warmup_packets=WARM, measure_packets=MEAS)
    return machine, result, sampler


def test_interval_deltas_telescope_to_run_totals():
    machine, _, sampler = _sampled_run()
    for fr in machine.flows:
        series = sampler.series(fr.label)
        points = series.points()
        assert len(points) >= 2
        totals = series.totals()
        # The series spans the whole run (t=0 snapshot to final close-out),
        # so interval deltas must sum exactly to the engine's counters.
        assert sum(p["packets"] for p in points) == totals.packets
        assert totals.packets == fr.counters.packets
        assert sum(p["l3_refs"] for p in points) == fr.counters.l3_refs
        # Cycles telescope to the flow's end-of-run clock (the final
        # close-out snapshot lands at ``fr.clock``).
        assert sum(p["cycles"] for p in points) == pytest.approx(fr.clock)


def test_interval_rates_are_positive_and_bounded():
    _, _, sampler = _sampled_run()
    series = sampler.series("MON@0")
    for p in series.points():
        assert p["t1_s"] > p["t0_s"]
        assert p["pps"] >= 0
        assert 0.0 <= p["l3_hit_rate"] <= 1.0
        assert 0.0 <= p["mc_wait_frac"] <= 1.0


def test_interval_spacing_follows_the_knob():
    _, _, sampler = _sampled_run(interval_us=50.0)
    series = sampler.series("MON@0")
    points = series.points()
    # Deadlines sit on a fixed 50us grid but samples land at the first
    # packet boundary past each deadline, so widths jitter by about one
    # packet around the knob (the final close-out interval is shorter).
    widths = [p["t1_s"] - p["t0_s"] for p in points[:-1]]
    assert widths
    assert all(w >= 45e-6 for w in widths)
    mean = sum(widths) / len(widths)
    assert mean == pytest.approx(50e-6, rel=0.05)


def test_drop_series_relative_to_solo():
    _, _, sampler = _sampled_run()
    series = sampler.series("MON@0")
    solo_pps = max(p["pps"] for p in series.points())
    drops = series.drop_series(solo_pps)
    assert len(drops) == len(series.points())
    for (_, drop), p in zip(drops, series.points()):
        assert drop == pytest.approx(1.0 - p["pps"] / solo_pps)
        assert drop >= 0.0


def test_summary_percentiles_are_monotone():
    _, _, sampler = _sampled_run()
    summary = sampler.series("MON@0").summary()
    for field, stats in summary.items():
        assert stats["p0"] <= stats["p50"] <= stats["p90"] <= \
            stats["p99"] <= stats["p100"], field
        assert stats["p0"] <= stats["mean"] <= stats["p100"]


def test_percentile_interpolates():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([5.0], 99) == 5.0


def test_sampler_requires_exactly_one_interval():
    with pytest.raises(ValueError):
        MetricsSampler()
    with pytest.raises(ValueError):
        MetricsSampler(interval_us=10.0, interval_cycles=100.0)


def test_all_series_covers_every_flow():
    machine, _, sampler = _sampled_run(apps=("MON", "IP", "FW"))
    series = sampler.all_series()
    assert sorted(series) == sorted(fr.label for fr in machine.flows)
    assert all(isinstance(s, FlowSeries) for s in series.values())


def test_result_timeseries_accessor():
    _, result, _ = _sampled_run()
    series = result.timeseries("MON@0")
    assert series.points()
    # Without a sampler attached, the accessor refuses.
    machine = Machine(_spec(), seed=11)
    machine.add_flow(app_factory("IP"), core=0)
    bare = machine.run(warmup_packets=WARM, measure_packets=MEAS)
    with pytest.raises(RuntimeError):
        bare.timeseries("IP@0")


def test_counters_copy_grows_tags_registered_late():
    from repro.hw.counters import CoreCounters
    from repro.mem.access import TAGS

    counters = CoreCounters()
    TAGS.register("obs_test_late_tag")
    snap = counters.copy()
    # The snapshot covers the late registration: downstream consumers
    # (samplers, report serializers) index tag arrays directly.
    assert len(snap.tag_refs) == len(TAGS)
    assert len(snap.tag_hits) == len(TAGS)
