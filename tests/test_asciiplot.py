"""ASCII plotting helpers."""

import pytest

from repro.core.asciiplot import bar_chart, plot, plot_curve


def test_plot_single_series_dimensions():
    out = plot_curve([(0, 0), (50, 0.1), (100, 0.25)], name="MON",
                     width=40, height=8)
    lines = out.splitlines()
    assert len(lines) == 8 + 3  # grid + axis + labels + legend
    assert all("|" in line for line in lines[:8])
    assert "o=MON" in lines[-1]


def test_plot_places_extremes():
    out = plot_curve([(0, 0.0), (100, 1.0)], width=20, height=5)
    lines = out.splitlines()
    # Max value lands on the top row, min on the bottom grid row.
    assert "o" in lines[0]
    assert "o" in lines[4]


def test_plot_multiple_series_glyphs():
    out = plot({"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 3)]},
               width=20, height=6)
    assert "o=a" in out and "x=b" in out


def test_plot_validation():
    with pytest.raises(ValueError):
        plot({})
    with pytest.raises(ValueError):
        plot({"a": []})
    with pytest.raises(ValueError):
        plot({"a": [(0, 1)]}, width=2)


def test_plot_flat_series_does_not_crash():
    out = plot_curve([(0, 0.5), (10, 0.5)], width=20, height=5)
    assert "o" in out


def test_bar_chart():
    out = bar_chart({"MON": 20.9, "FW": 4.7}, width=20, unit="%")
    lines = out.splitlines()
    assert len(lines) == 2
    mon_hashes = lines[0].count("#")
    fw_hashes = lines[1].count("#")
    assert mon_hashes == 20
    assert 0 < fw_hashes < mon_hashes


def test_bar_chart_zero_peak():
    out = bar_chart({"a": 0.0})
    assert "#" not in out


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart({})
