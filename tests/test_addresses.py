"""IPv4 address helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import (
    int_to_ip,
    ip_to_int,
    network_of,
    prefix_mask,
    random_ip,
)


def test_parse_format():
    assert ip_to_int("10.0.0.1") == 0x0A000001
    assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
    assert int_to_ip(0xC0A80101) == "192.168.1.1"


def test_parse_rejects_garbage():
    for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
        with pytest.raises(ValueError):
            ip_to_int(bad)


def test_format_rejects_out_of_range():
    with pytest.raises(ValueError):
        int_to_ip(-1)
    with pytest.raises(ValueError):
        int_to_ip(1 << 32)


@given(st.integers(min_value=0, max_value=0xFFFFFFFF))
def test_property_roundtrip(value):
    assert ip_to_int(int_to_ip(value)) == value


def test_prefix_mask():
    assert prefix_mask(0) == 0
    assert prefix_mask(8) == 0xFF000000
    assert prefix_mask(24) == 0xFFFFFF00
    assert prefix_mask(32) == 0xFFFFFFFF
    with pytest.raises(ValueError):
        prefix_mask(33)


def test_network_of():
    addr = ip_to_int("192.168.37.41")
    assert network_of(addr, 16) == ip_to_int("192.168.0.0")
    assert network_of(addr, 24) == ip_to_int("192.168.37.0")


def test_random_ip_determinism():
    a = random_ip(random.Random(1))
    b = random_ip(random.Random(1))
    assert a == b
    assert 0 <= a <= 0xFFFFFFFF
