"""Aggressiveness containment: throttled and two-faced flows."""

import pytest

from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.throttling import ThrottledFlow, TwoFacedFlow, throttled_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec


def spec():
    return PlatformSpec.westmere().scaled(64)


def syn_refs_per_sec(factory, packets=600):
    m = Machine(spec())
    m.add_flow(factory, core=0, label="f")
    return m.run(warmup_packets=100, measure_packets=packets)["f"]


def test_throttle_bounds_refs_per_sec():
    baseline = syn_refs_per_sec(syn_max_factory()).l3_refs_per_sec
    target = baseline / 3
    stats = syn_refs_per_sec(
        throttled_factory(syn_max_factory(), target_refs_per_sec=target,
                          adjust_every=16)
    )
    assert stats.l3_refs_per_sec < target * 1.25
    assert stats.l3_refs_per_sec < baseline / 2


def test_throttle_leaves_slow_flows_alone():
    gentle = syn_factory(cpu_ops_per_ref=400)
    baseline = syn_refs_per_sec(gentle).l3_refs_per_sec
    stats = syn_refs_per_sec(
        throttled_factory(gentle, target_refs_per_sec=baseline * 10)
    )
    assert stats.l3_refs_per_sec == pytest.approx(baseline, rel=0.15)


def test_throttled_flow_validation():
    with pytest.raises(ValueError):
        ThrottledFlow(object(), target_refs_per_sec=0)
    with pytest.raises(ValueError):
        ThrottledFlow(object(), target_refs_per_sec=1e6, adjust_every=0)


def test_two_faced_flow_switches_behaviour():
    m = Machine(spec())

    def factory(env):
        return TwoFacedFlow(
            innocent=syn_factory(cpu_ops_per_ref=600)(env),
            aggressive=syn_max_factory()(env),
            trigger_packets=200,
        )

    m.add_flow(factory, core=0, label="tf")
    stats = m.run(warmup_packets=400, measure_packets=400)["tf"]
    flow = m.flows[0].flow
    assert flow.triggered
    # Post-trigger (the measured window) it behaves like SYN_MAX: no gaps.
    aggressive_rate = stats.l3_refs_per_sec
    baseline = syn_refs_per_sec(syn_factory(cpu_ops_per_ref=600)).l3_refs_per_sec
    assert aggressive_rate > 2 * baseline


def test_two_faced_flow_contained_by_throttle():
    innocent_rate = syn_refs_per_sec(
        syn_factory(cpu_ops_per_ref=600)
    ).l3_refs_per_sec

    def factory(env):
        two_faced = TwoFacedFlow(
            innocent=syn_factory(cpu_ops_per_ref=600)(env),
            aggressive=syn_max_factory()(env),
            trigger_packets=150,
        )
        return ThrottledFlow(two_faced, target_refs_per_sec=innocent_rate,
                             adjust_every=16, gain=1.0)

    m = Machine(spec())
    m.add_flow(factory, core=0, label="contained")
    stats = m.run(warmup_packets=600, measure_packets=600)["contained"]
    # The paper's claim: the flow "performs no more than the profiled
    # number of cache refs/sec" (small control overshoot allowed).
    assert stats.l3_refs_per_sec < innocent_rate * 1.3


def test_two_faced_validation():
    with pytest.raises(ValueError):
        TwoFacedFlow(object(), object(), trigger_packets=-1)


# -- throttle-loop boundary behaviour (unit level) ----------------------------

class _InertFlow:
    name = "inert"

    def run_packet(self, ctx):
        return None


class _Ctx:
    def __init__(self):
        self.computed = []

    def compute(self, ops, refs):
        self.computed.append((ops, refs))


class _Counting:
    def __init__(self, name):
        self.name = name
        self.calls = 0

    def run_packet(self, ctx):
        self.calls += 1


def make_throttle(adjust_every=4, gain=0.6, target=1e6):
    from types import SimpleNamespace

    flow = ThrottledFlow(_InertFlow(), target_refs_per_sec=target,
                         adjust_every=adjust_every, gain=gain)
    fr = SimpleNamespace(counters=SimpleNamespace(l3_refs=0), clock=0.0)
    machine = SimpleNamespace(spec=SimpleNamespace(freq_hz=1e9))
    flow.attach_run(machine, fr)
    return flow, fr


def test_adjust_fires_only_on_period_boundaries():
    flow, fr = make_throttle(adjust_every=4)
    ctx = _Ctx()
    for i in range(1, 9):
        fr.counters.l3_refs += 10
        fr.clock += 1000.0
        flow.run_packet(ctx)
        assert flow.adjustments == i // 4


def test_adjust_without_clock_progress_is_a_no_op():
    flow, _ = make_throttle(adjust_every=1)
    flow.run_packet(_Ctx())  # d_clock == 0: feedback loop must not divide
    assert flow.adjustments == 0
    assert flow.extra_gap == 0.0


def test_extra_gap_never_negative():
    flow, fr = make_throttle(adjust_every=1)
    flow.extra_gap = 5.0
    ctx = _Ctx()
    for _ in range(50):
        fr.clock += 1000.0  # time passes, zero refs: far under target
        flow.run_packet(ctx)
        assert flow.extra_gap >= 0.0
    assert flow.extra_gap == 0.0


def test_fractional_gap_below_one_cycle_is_not_applied():
    flow, _ = make_throttle()
    ctx = _Ctx()
    flow.extra_gap = 0.9
    flow.run_packet(ctx)
    assert ctx.computed == []
    flow.extra_gap = 2.0
    flow.run_packet(ctx)
    assert ctx.computed == [(2, 2)]


def test_over_target_growth_and_quarter_gain_shrink():
    flow, fr = make_throttle(adjust_every=1, gain=0.6, target=1e6)
    ctx = _Ctx()
    # One interval at 10x the target rate: error = 9, 1000 cycles/packet.
    fr.counters.l3_refs += 10
    fr.clock += 1000.0
    flow.run_packet(ctx)
    assert flow.extra_gap == pytest.approx(0.6 * 9 * 1000)
    # One idle interval (rate 0, error = -1) shrinks at a quarter gain.
    before = flow.extra_gap
    fr.clock += 1000.0
    flow.run_packet(ctx)
    assert flow.extra_gap == pytest.approx(before - 0.25 * 0.6 * 1000)


def test_finish_run_flushes_partial_window():
    # adjust_every larger than the packets actually run: the periodic
    # loop never fires, so the end-of-run flush must engage it instead.
    flow, fr = make_throttle(adjust_every=1000, gain=0.6, target=1e6)
    ctx = _Ctx()
    for _ in range(5):
        fr.counters.l3_refs += 10
        fr.clock += 1000.0
        flow.run_packet(ctx)
    assert flow.adjustments == 0
    flow.finish_run()
    assert flow.adjustments == 1
    # Same arithmetic as the periodic loop, over the 5-packet window:
    # rate 1e7 refs/s vs target 1e6 -> error 9, 1000 cycles/packet.
    assert flow.extra_gap == pytest.approx(0.6 * 9 * 1000)


def test_finish_run_without_packets_is_a_no_op():
    flow, _ = make_throttle(adjust_every=1000)
    flow.finish_run()
    assert flow.adjustments == 0
    stats = flow.stats()
    assert stats["packets"] == 0
    assert stats["engaged"] is False


def test_finish_run_is_flush_once():
    flow, fr = make_throttle(adjust_every=1000)
    fr.counters.l3_refs += 10
    fr.clock += 1000.0
    flow.run_packet(_Ctx())
    flow.finish_run()
    adjustments = flow.adjustments
    flow.finish_run()  # no new packets since the flush: nothing to do
    assert flow.adjustments == adjustments


def test_finish_run_forwards_to_inner():
    calls = []

    class _FinishingInner(_InertFlow):
        def finish_run(self):
            calls.append(1)

    flow = ThrottledFlow(_FinishingInner(), target_refs_per_sec=1e6)
    flow.finish_run()
    assert calls == [1]


def test_stats_surface_dead_and_live_loops():
    flow, fr = make_throttle(adjust_every=4)
    ctx = _Ctx()
    assert flow.stats()["engaged"] is False
    for _ in range(4):
        fr.counters.l3_refs += 10
        fr.clock += 1000.0
        flow.run_packet(ctx)
    stats = flow.stats()
    assert stats["engaged"] is True
    assert stats["adjustments"] == 1
    assert stats["packets"] == 4
    assert stats["target_refs_per_sec"] == 1e6


def test_periodic_and_flush_paths_share_arithmetic():
    # A full periodic window and an equal-sized flushed window must
    # produce bit-identical gaps (the flush is the same _adjust call).
    periodic, fr_p = make_throttle(adjust_every=4)
    flushed, fr_f = make_throttle(adjust_every=1000)
    ctx = _Ctx()
    for fr, flow in ((fr_p, periodic), (fr_f, flushed)):
        for _ in range(4):
            fr.counters.l3_refs += 10
            fr.clock += 1000.0
            flow.run_packet(ctx)
    flushed.finish_run()
    assert flushed.extra_gap == periodic.extra_gap


def test_throttled_flow_is_never_stream_cached():
    flow = ThrottledFlow(_InertFlow(), target_refs_per_sec=1e6)
    assert flow.stream_signature is None
    assert flow.timing_pure is False


def test_two_faced_trigger_boundary_exact():
    innocent, aggressive = _Counting("i"), _Counting("a")
    flow = TwoFacedFlow(innocent, aggressive, trigger_packets=3)
    for _ in range(5):
        flow.run_packet(None)
    # Packets 1..3 run the innocent persona; the switch lands on packet 4.
    assert (innocent.calls, aggressive.calls) == (3, 2)
    assert flow.triggered


def test_two_faced_zero_trigger_is_aggressive_from_first_packet():
    innocent, aggressive = _Counting("i"), _Counting("a")
    flow = TwoFacedFlow(innocent, aggressive, trigger_packets=0)
    flow.run_packet(None)
    assert (innocent.calls, aggressive.calls) == (0, 1)
