"""Aggressiveness containment: throttled and two-faced flows."""

import pytest

from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.throttling import ThrottledFlow, TwoFacedFlow, throttled_factory
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec


def spec():
    return PlatformSpec.westmere().scaled(64)


def syn_refs_per_sec(factory, packets=600):
    m = Machine(spec())
    m.add_flow(factory, core=0, label="f")
    return m.run(warmup_packets=100, measure_packets=packets)["f"]


def test_throttle_bounds_refs_per_sec():
    baseline = syn_refs_per_sec(syn_max_factory()).l3_refs_per_sec
    target = baseline / 3
    stats = syn_refs_per_sec(
        throttled_factory(syn_max_factory(), target_refs_per_sec=target,
                          adjust_every=16)
    )
    assert stats.l3_refs_per_sec < target * 1.25
    assert stats.l3_refs_per_sec < baseline / 2


def test_throttle_leaves_slow_flows_alone():
    gentle = syn_factory(cpu_ops_per_ref=400)
    baseline = syn_refs_per_sec(gentle).l3_refs_per_sec
    stats = syn_refs_per_sec(
        throttled_factory(gentle, target_refs_per_sec=baseline * 10)
    )
    assert stats.l3_refs_per_sec == pytest.approx(baseline, rel=0.15)


def test_throttled_flow_validation():
    with pytest.raises(ValueError):
        ThrottledFlow(object(), target_refs_per_sec=0)
    with pytest.raises(ValueError):
        ThrottledFlow(object(), target_refs_per_sec=1e6, adjust_every=0)


def test_two_faced_flow_switches_behaviour():
    m = Machine(spec())

    def factory(env):
        return TwoFacedFlow(
            innocent=syn_factory(cpu_ops_per_ref=600)(env),
            aggressive=syn_max_factory()(env),
            trigger_packets=200,
        )

    m.add_flow(factory, core=0, label="tf")
    stats = m.run(warmup_packets=400, measure_packets=400)["tf"]
    flow = m.flows[0].flow
    assert flow.triggered
    # Post-trigger (the measured window) it behaves like SYN_MAX: no gaps.
    aggressive_rate = stats.l3_refs_per_sec
    baseline = syn_refs_per_sec(syn_factory(cpu_ops_per_ref=600)).l3_refs_per_sec
    assert aggressive_rate > 2 * baseline


def test_two_faced_flow_contained_by_throttle():
    innocent_rate = syn_refs_per_sec(
        syn_factory(cpu_ops_per_ref=600)
    ).l3_refs_per_sec

    def factory(env):
        two_faced = TwoFacedFlow(
            innocent=syn_factory(cpu_ops_per_ref=600)(env),
            aggressive=syn_max_factory()(env),
            trigger_packets=150,
        )
        return ThrottledFlow(two_faced, target_refs_per_sec=innocent_rate,
                             adjust_every=16, gain=1.0)

    m = Machine(spec())
    m.add_flow(factory, core=0, label="contained")
    stats = m.run(warmup_packets=600, measure_packets=600)["contained"]
    # The paper's claim: the flow "performs no more than the profiled
    # number of cache refs/sec" (small control overshoot allowed).
    assert stats.l3_refs_per_sec < innocent_rate * 1.3


def test_two_faced_validation():
    with pytest.raises(ValueError):
        TwoFacedFlow(object(), object(), trigger_packets=-1)
