"""Cross-cutting property-based tests on core invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.equation1 import drop_from_conversion
from repro.core.model import CacheModel
from repro.core.prediction import SensitivityCurve
from repro.hw.cache import SetAssociativeCache
from repro.mem.access import AccessContext
from repro.mem.allocator import AddressSpace
from repro.net.packet import Packet


# -- Equation 1 ----------------------------------------------------------------

@given(h=st.floats(min_value=0, max_value=1e9),
       kappa=st.floats(min_value=0, max_value=1),
       delta=st.floats(min_value=1, max_value=200))
def test_property_drop_is_a_valid_fraction(h, kappa, delta):
    drop = drop_from_conversion(h, kappa, delta)
    assert 0.0 <= drop < 1.0


@given(h=st.floats(min_value=1e3, max_value=1e9),
       k1=st.floats(min_value=0, max_value=1),
       k2=st.floats(min_value=0, max_value=1))
def test_property_drop_monotone_in_kappa(h, k1, k2):
    lo, hi = sorted((k1, k2))
    assert drop_from_conversion(h, lo) <= drop_from_conversion(h, hi)


# -- Appendix A model -----------------------------------------------------------

@given(
    cache_lines=st.integers(min_value=64, max_value=1_000_000),
    hits=st.floats(min_value=1e3, max_value=1e8),
    chunks=st.integers(min_value=1, max_value=1_000_000),
    r1=st.floats(min_value=0, max_value=5e8),
    r2=st.floats(min_value=0, max_value=5e8),
)
def test_property_model_conversion_monotone_and_bounded(cache_lines, hits,
                                                        chunks, r1, r2):
    model = CacheModel(cache_lines=cache_lines, target_hits_per_sec=hits,
                       working_set_chunks=chunks)
    lo, hi = sorted((r1, r2))
    c_lo, c_hi = model.conversion_rate(lo), model.conversion_rate(hi)
    assert 0.0 <= c_lo <= c_hi <= 1.0


# -- sensitivity curves -----------------------------------------------------------

@st.composite
def curve_points(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    xs = sorted(draw(st.lists(
        st.floats(min_value=1e5, max_value=3e8), min_size=n, max_size=n,
        unique=True)))
    ys = draw(st.lists(st.floats(min_value=0, max_value=0.9), min_size=n,
                       max_size=n))
    return list(zip(xs, ys))


@given(points=curve_points(), x=st.floats(min_value=0, max_value=5e8))
def test_property_curve_prediction_within_range(points, x):
    curve = SensitivityCurve("X", points)
    value = curve.predict(x)
    ys = [y for _, y in curve.points]
    assert min(ys) - 1e-12 <= value <= max(ys) + 1e-12


@given(points=curve_points())
def test_property_curve_exact_at_knots(points):
    curve = SensitivityCurve("X", points)
    for x, y in points:
        assert curve.predict(x) == pytest.approx(y, abs=1e-9)


@st.composite
def monotone_curve_points(draw):
    """Sensitivity-shaped curves: unique sorted refs, non-decreasing drops.

    Measured sensitivity curves are (noise aside) non-decreasing — more
    competition never helps — so the prediction-method properties below
    are stated over this shape.
    """
    n = draw(st.integers(min_value=1, max_value=8))
    xs = sorted(draw(st.lists(
        st.floats(min_value=1e5, max_value=3e8), min_size=n, max_size=n,
        unique=True)))
    steps = draw(st.lists(st.floats(min_value=0, max_value=0.2), min_size=n,
                          max_size=n))
    ys, total = [], 0.0
    for step in steps:
        total = min(0.95, total + step)
        ys.append(total)
    return list(zip(xs, ys))


@given(points=monotone_curve_points(),
       x1=st.floats(min_value=0, max_value=1e9),
       x2=st.floats(min_value=0, max_value=1e9))
def test_property_curve_lookup_monotone_in_competing_refs(points, x1, x2):
    curve = SensitivityCurve("X", points)
    lo, hi = sorted((x1, x2))
    assert curve.predict(lo) <= curve.predict(hi) + 1e-12


@given(points=monotone_curve_points(),
       refs=st.lists(st.floats(min_value=0, max_value=5e7), min_size=1,
                     max_size=8))
def test_property_removing_a_competitor_never_raises_prediction(points, refs):
    """The method evaluates the curve at the *sum* of competing solo
    refs/sec, so dropping any competitor can only lower the prediction."""
    curve = SensitivityCurve("X", points)
    assert (curve.predict(sum(refs[:-1]))
            <= curve.predict(sum(refs)) + 1e-12)


@given(points=monotone_curve_points(), x=st.floats(min_value=0, max_value=1e9))
def test_property_curve_bounded_and_clamped_by_endpoints(points, x):
    curve = SensitivityCurve("X", points)
    value = curve.predict(x)
    assert float(curve.drops[0]) - 1e-12 <= value \
        <= float(curve.drops[-1]) + 1e-12
    # Past the highest measured level the curve is flat (paper obs. (c)).
    top = float(curve.refs[-1])
    assert curve.predict(2 * top + 1.0) \
        == pytest.approx(float(curve.drops[-1]), abs=1e-12)


@given(points=monotone_curve_points())
def test_property_curve_exact_at_measured_points_and_origin(points):
    curve = SensitivityCurve("X", points)
    # Zero competition means zero drop: the auto-inserted origin.
    assert curve.predict(0.0) == 0.0
    for x, y in points:
        assert curve.predict(x) == pytest.approx(y, abs=1e-9)


@given(x=st.floats(min_value=-1e9, max_value=-1e-9))
def test_property_curve_rejects_negative_competition(x):
    curve = SensitivityCurve("X", [(1e6, 0.1)])
    with pytest.raises(ValueError):
        curve.predict(x)


# -- cache vs. fill/invalidate interplay --------------------------------------------

@given(st.lists(
    st.tuples(st.sampled_from(["access", "fill", "invalidate"]),
              st.integers(min_value=0, max_value=63)),
    min_size=1, max_size=300,
))
@settings(max_examples=40, deadline=None)
def test_property_cache_state_consistent_under_mixed_ops(ops):
    cache = SetAssociativeCache(size=4 * 64 * 2, ways=2, name="t")
    resident = {s: [] for s in range(cache.n_sets)}
    for op, line in ops:
        s = line % cache.n_sets
        if op == "access":
            hit = cache.access(line)
            assert hit == (line in resident[s])
            if hit:
                resident[s].remove(line)
            resident[s].append(line)
            if len(resident[s]) > 2:
                resident[s].pop(0)
        elif op == "fill":
            evicted = cache.fill(line)
            if line in resident[s]:
                resident[s].remove(line)
                assert evicted is None
            resident[s].append(line)
            if len(resident[s]) > 2:
                assert evicted == resident[s].pop(0)
        else:
            was_there = line in resident[s]
            assert cache.invalidate(line) == was_there
            if was_there:
                resident[s].remove(line)
    for s in range(cache.n_sets):
        assert cache.sets[s] == resident[s]


# -- flow hash ---------------------------------------------------------------------

@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFFFFFFF),
              st.integers(min_value=0, max_value=0xFFFFFFFF),
              st.integers(min_value=0, max_value=0xFFFF),
              st.integers(min_value=0, max_value=0xFFFF)),
    min_size=20, max_size=60, unique=True,
))
@settings(max_examples=20, deadline=None)
def test_property_flow_hash_spreads(tuples):
    """Distinct 5-tuples rarely collide in the low bits (RSS quality)."""
    buckets = {Packet.udp(src=s, dst=d, sport=sp, dport=dp).flow_hash() % 64
               for s, d, sp, dp in tuples}
    assert len(buckets) >= min(len(tuples), 64) // 4


# -- access programs ------------------------------------------------------------------

@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=500),
              st.integers(min_value=0, max_value=4000),
              st.integers(min_value=1, max_value=100)),
    min_size=1, max_size=40,
))
def test_property_program_preserves_gap_budget(steps):
    """Total recorded compute equals the compute issued."""
    space = AddressSpace(1)
    region = space.alloc(8192, "r")
    ctx = AccessContext()
    issued = 0
    for gap, offset, length in steps:
        ctx.compute(gap, 1)
        issued += gap
        ctx.touch(region, offset % 4096, min(length, 4096), 0)
    ctx.compute(17, 1)
    issued += 17
    ctx.finish_packet()
    assert ctx.total_gap_cycles() == issued
    # Program layout is a flat multiple of 3.
    assert len(ctx.program) % 3 == 0


# -- determinism across identical machines ----------------------------------------------

def test_property_seeded_rngs_are_stable():
    from repro.hw.machine import Machine
    from repro.hw.topology import PlatformSpec

    spec = PlatformSpec.westmere().scaled(64)

    def lines(seed):
        machine = Machine(spec, seed=seed)

        class Probe:
            name = "p"

            def __init__(self, env):
                self.rng = env.rng

            def run_packet(self, ctx):
                ctx.compute(10, 1)
                ctx.touch_line(self.rng.randrange(1000))
                return None

        machine.add_flow(Probe, core=0, label="p")
        machine.run(warmup_packets=50, measure_packets=50)
        return machine.flows[0].counters.l3_refs

    assert lines(1) == lines(1)
