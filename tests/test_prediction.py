"""Sensitivity curves and the prediction method (unit level)."""

import pytest

from repro.core.prediction import ContentionPredictor, SensitivityCurve
from repro.core.profiler import SoloProfile


def profile(app, refs=20e6, throughput=3e6, hits=15e6):
    return SoloProfile(
        app=app, throughput=throughput, cycles_per_instruction=1.4,
        l3_refs_per_sec=refs, l3_hits_per_sec=hits, cycles_per_packet=900,
        l3_refs_per_packet=6, l3_misses_per_packet=1.5, l2_hits_per_packet=2,
    )


def curve(app, points):
    return SensitivityCurve(app=app, points=list(points))


def test_curve_always_anchored_at_zero():
    c = curve("X", [(10e6, 0.1)])
    assert c.points[0] == (0.0, 0.0)
    assert c.predict(0.0) == 0.0


def test_curve_interpolates_linearly():
    c = curve("X", [(10e6, 0.1), (20e6, 0.3)])
    assert c.predict(15e6) == pytest.approx(0.2)


def test_curve_clamps_beyond_last_point():
    c = curve("X", [(10e6, 0.1), (20e6, 0.3)])
    assert c.predict(100e6) == pytest.approx(0.3)


def test_curve_rejects_negative_competition():
    c = curve("X", [(10e6, 0.1)])
    with pytest.raises(ValueError):
        c.predict(-1.0)


def test_curve_sorts_points():
    c = curve("X", [(20e6, 0.3), (10e6, 0.1)])
    assert [x for x, _ in c.points] == [0.0, 10e6, 20e6]


def test_turning_point():
    c = curve("X", [(10e6, 0.10), (20e6, 0.18), (40e6, 0.20), (80e6, 0.20)])
    tp = c.turning_point(fraction=0.8)
    # 80% of max (0.16) is crossed between 10M and 20M.
    assert 10e6 < tp < 20e6


def test_turning_point_flat_curve():
    c = curve("X", [(10e6, 0.0)])
    assert c.turning_point() == 0.0


def test_predict_extrapolation_holds_last_level():
    # Past the last swept level the curve must hold its final value — a
    # deliberate over-estimate-preserving clamp, never a linear
    # extrapolation that could run the drop past 1.0.
    c = curve("X", [(10e6, 0.1), (20e6, 0.3)])
    last_ref, last_drop = c.points[-1]
    assert c.predict(last_ref) == pytest.approx(last_drop)
    for factor in (1.0 + 1e-9, 2.0, 1e3):
        assert c.predict(last_ref * factor) == pytest.approx(last_drop)


def test_predict_extrapolation_of_non_monotone_tail():
    # A noisy sweep can end on a downtick; the clamp holds the *last*
    # point's value, not the maximum.
    c = curve("X", [(10e6, 0.3), (20e6, 0.25)])
    assert c.predict(50e6) == pytest.approx(0.25)


def test_turning_point_monotone_flat_plateau():
    # Rises then goes exactly flat: the turning point is where the
    # interpolated curve first reaches 80% of the plateau.
    c = curve("X", [(10e6, 0.2), (20e6, 0.2), (40e6, 0.2)])
    # target = 0.16, crossed on the 0 -> 10e6 segment at t = 0.8.
    assert c.turning_point() == pytest.approx(8e6)


def test_turning_point_uniform_flat_nonzero():
    # Degenerate: every swept point at the same nonzero drop. The
    # anchored (0, 0) point makes the first segment carry the whole
    # rise, so the turning point stays within it and never divides by
    # a zero span.
    c = curve("X", [(10e6, 0.1), (80e6, 0.1)])
    tp = c.turning_point(fraction=0.5)
    assert tp == pytest.approx(5e6)
    assert 0.0 < tp < 10e6


def test_turning_point_all_zero_drops():
    c = curve("X", [(10e6, 0.0), (20e6, 0.0)])
    assert c.turning_point() == 0.0


def test_max_competition_inverts_the_curve():
    c = curve("X", [(10e6, 0.1), (20e6, 0.3)])
    # 20% drop is crossed halfway along the second segment.
    assert c.max_competition(0.2) == pytest.approx(15e6)
    # Exactly on a knot: the budget extends to the knot itself.
    assert c.max_competition(0.1) == pytest.approx(10e6)


def test_max_competition_none_when_curve_never_exceeds():
    c = curve("X", [(10e6, 0.1), (20e6, 0.3)])
    assert c.max_competition(0.3) is None
    assert c.max_competition(0.9) is None


def test_max_competition_zero_budget():
    c = curve("X", [(10e6, 0.1)])
    # Any competition at all predicts a drop above 0: budget is the
    # zero-competition anchor.
    assert c.max_competition(0.0) == pytest.approx(0.0)


def test_max_competition_rejects_negative():
    c = curve("X", [(10e6, 0.1)])
    with pytest.raises(ValueError):
        c.max_competition(-0.1)


def make_predictor():
    profiles = {
        "A": profile("A", refs=20e6),
        "B": profile("B", refs=5e6),
    }
    curves = {
        "A": curve("A", [(25e6, 0.10), (100e6, 0.20)]),
        "B": curve("B", [(25e6, 0.02), (100e6, 0.05)]),
    }
    return ContentionPredictor(profiles, curves)


def test_competing_refs_sums_solo_profiles():
    p = make_predictor()
    assert p.competing_refs(["A", "B", "B"]) == pytest.approx(30e6)


def test_predict_drop_reads_target_curve():
    p = make_predictor()
    # Competing refs = 20e6 + 5e6 = 25e6 -> exactly the first curve point.
    assert p.predict_drop("A", ["A", "B"]) == pytest.approx(0.10)
    assert p.predict_drop("B", ["A", "B"]) == pytest.approx(0.02)


def test_predict_drop_with_perfect_knowledge_override():
    p = make_predictor()
    assert p.predict_drop("A", competing_refs=100e6) == pytest.approx(0.20)


def test_predict_throughput():
    p = make_predictor()
    drop = p.predict_drop("A", ["A", "B"])
    assert p.predict_throughput("A", ["A", "B"]) == \
        pytest.approx(3e6 * (1 - drop))


def test_unknown_apps_raise():
    p = make_predictor()
    with pytest.raises(KeyError):
        p.predict_drop("Z", ["A"])
    with pytest.raises(KeyError):
        p.competing_refs(["Z"])
