"""The package's public import surface."""

import repro
import repro.apps
import repro.core
import repro.guard
import repro.net


def test_top_level_exports():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_subpackage_exports():
    for module in (repro.apps, repro.core, repro.guard, repro.net):
        for name in module.__all__:
            assert getattr(module, name) is not None, (module.__name__, name)


def test_version_is_set():
    assert repro.__version__.count(".") == 2


def test_app_names_cover_paper_and_extensions():
    assert set(repro.REALISTIC_APPS) == {"IP", "MON", "FW", "RE", "VPN"}
    assert "SYN_MAX" in repro.APP_NAMES
    assert "DPI" in repro.APP_NAMES
