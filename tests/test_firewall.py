"""Firewall: rule semantics and the vectorized fast path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.firewall import Firewall, Rule, generate_unmatchable_rules
from repro.mem.access import AccessContext
from repro.net.addresses import prefix_mask
from repro.net.packet import Packet
from tests.conftest import make_env


def packet(src=0x0A000001, dst=0x0B000001, dport=80, proto_tcp=False):
    make = Packet.tcp if proto_tcp else Packet.udp
    return make(src=src, dst=dst, dport=dport)


def test_rule_matching_fields():
    rule = Rule(src_net=0x0A000000, src_mask=prefix_mask(8),
                dst_net=0x0B000000, dst_mask=prefix_mask(8),
                dport_lo=80, dport_hi=90, protocol=17)
    assert rule.matches(packet())
    assert not rule.matches(packet(src=0x0C000001))
    assert not rule.matches(packet(dst=0x0C000001))
    assert not rule.matches(packet(dport=91))
    assert not rule.matches(packet(proto_tcp=True))


def test_rule_wildcard_protocol():
    rule = Rule(src_net=0, src_mask=0, dst_net=0, dst_mask=0,
                dport_lo=0, dport_hi=65535, protocol=None)
    assert rule.matches(packet())
    assert rule.matches(packet(proto_tcp=True))


def test_unmatchable_rules_require_class_e_sources():
    rules = generate_unmatchable_rules(random.Random(0), 200)
    assert len(rules) == 200
    for rule in rules:
        # The masked source network sits in 240.0.0.0/4 whenever the mask
        # covers the top nibble.
        if rule.src_mask & 0xF0000000 == 0xF0000000:
            assert rule.src_net >> 28 == 0xF


def make_firewall(n_rules=100, seed=1):
    fw = Firewall(n_rules=n_rules)
    fw.initialize(make_env(seed=seed))
    return fw


def test_nonmatching_packet_passes_and_scans_all():
    fw = make_firewall()
    ctx = AccessContext()
    out = fw.process(ctx, packet())
    assert out is not None
    assert fw.blocked == 0
    assert ctx.n_references > 0


def test_matching_packet_dropped():
    env = make_env()
    block_all = Rule(src_net=0, src_mask=0, dst_net=0, dst_mask=0,
                     dport_lo=0, dport_hi=65535, protocol=None)
    fw = Firewall(rules=[block_all])
    fw.initialize(env)
    assert fw.process(AccessContext(), packet()) is None
    assert fw.blocked == 1


def test_first_match_agrees_with_reference_rules():
    fw = make_firewall(n_rules=300)
    rng = random.Random(7)
    for _ in range(100):
        pkt = packet(src=rng.getrandbits(32), dst=rng.getrandbits(32),
                     dport=rng.randrange(65536))
        expected = None
        for i, rule in enumerate(fw.rules):
            if rule.matches(pkt):
                expected = i
                break
        assert fw.first_match(pkt) == expected


@given(
    src=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dport=st.integers(min_value=0, max_value=0xFFFF),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=60, deadline=None)
def test_property_vectorized_equals_reference(src, dst, dport, seed):
    """The numpy evaluation is exactly the sequential Rule.matches scan."""
    rng = random.Random(seed)
    rules = generate_unmatchable_rules(rng, 50)
    # Mix in some matchable rules for coverage of the match path.
    rules.insert(10, Rule(src_net=src & prefix_mask(16),
                          src_mask=prefix_mask(16), dst_net=0, dst_mask=0,
                          dport_lo=0, dport_hi=65535, protocol=None))
    fw = Firewall(rules=rules)
    fw.initialize(make_env(seed=seed))
    pkt = packet(src=src, dst=dst, dport=dport)
    expected = None
    for i, rule in enumerate(rules):
        if rule.matches(pkt):
            expected = i
            break
    assert fw.first_match(pkt) == expected


def test_memory_footprint_scales_but_rule_count_does_not():
    env = make_env()
    fw = Firewall()
    fw.initialize(env)
    assert len(fw.rules) == 1000
    assert fw.region.size < 1000 * 16


def test_requires_initialize():
    fw = Firewall()
    with pytest.raises(RuntimeError):
        fw.process(AccessContext(), packet())
