"""Validation harness extras and the sweep path (tiny scale)."""

import pytest

from repro.core.prediction import sweep_sensitivity
from repro.core.profiler import profile_apps
from repro.core.scheduling import PlacementStudy
from repro.core.validation import pairwise_drops
from repro.hw.topology import PlatformSpec

SPEC1 = PlatformSpec.westmere().scaled(64).single_socket()
SPEC2 = PlatformSpec.westmere().scaled(64)
W, M = 600, 400


@pytest.fixture(scope="module")
def profiles():
    return profile_apps(["IP", "FW"], SPEC1, warmup_packets=W,
                        measure_packets=M)


def test_pairwise_drops_covers_all_pairs(profiles):
    drops = pairwise_drops(["IP", "FW"], SPEC1, profiles,
                           n_competitors=2, warmup_packets=W,
                           measure_packets=M)
    assert set(drops) == {("IP", "IP"), ("IP", "FW"),
                          ("FW", "IP"), ("FW", "FW")}
    for (target, competitor), (drop, corun) in drops.items():
        assert -0.1 < drop < 0.9
        assert f"{target}@0" in corun.throughput


def test_sweep_sensitivity_produces_monotonic_competition(profiles):
    curve = sweep_sensitivity(
        "IP", SPEC1, cpu_ops_levels=(720, 60), n_competitors=2,
        warmup_packets=W, measure_packets=M, solo=profiles["IP"],
    )
    refs = list(curve.refs)
    assert refs == sorted(refs)
    assert len(curve.points) == 3  # anchored zero + two levels
    assert curve.points[0] == (0.0, 0.0)


def test_sweep_rejects_too_many_competitors(profiles):
    with pytest.raises(ValueError):
        sweep_sensitivity("IP", SPEC1, n_competitors=6, solo=profiles["IP"])
    with pytest.raises(ValueError):
        sweep_sensitivity("IP", SPEC1, n_competitors=0, solo=profiles["IP"])


def test_placement_study_simulates_splits():
    profiles = profile_apps(["IP"], SPEC2, warmup_packets=W,
                            measure_packets=M)
    study = PlacementStudy(SPEC2, profiles, warmup_packets=W,
                           measure_packets=M)
    result = study.run(["IP"] * 12, method="simulate")
    # A uniform combination has exactly one distinct split and zero gain.
    assert len(result.outcomes) == 1
    assert result.scheduling_gain == 0.0
    outcome = result.outcomes[0]
    assert len(outcome.per_flow_drop) == 12
    # Homogeneous flows suffer comparably on both sockets.
    drops = list(outcome.per_flow_drop.values())
    assert max(drops) - min(drops) < 0.25
