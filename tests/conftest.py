"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.hw.machine import FlowEnv, Machine
from repro.hw.topology import PlatformSpec
from repro.mem.allocator import AddressSpace


@pytest.fixture
def rng():
    """A deterministic RNG."""
    return random.Random(12345)


@pytest.fixture
def tiny_spec():
    """A heavily scaled-down platform for fast engine tests."""
    return PlatformSpec.westmere().scaled(64)


@pytest.fixture
def small_spec():
    """A moderately scaled platform for integration tests."""
    return PlatformSpec.westmere().scaled(32)


@pytest.fixture
def env(tiny_spec, rng):
    """A standalone FlowEnv (domain 0) for element/app construction."""
    return FlowEnv(space=AddressSpace(tiny_spec.n_sockets), domain=0,
                   spec=tiny_spec, rng=rng)


def make_env(spec=None, domain=0, seed=7):
    """Non-fixture helper for tests needing several environments."""
    if spec is None:
        spec = PlatformSpec.westmere().scaled(64)
    return FlowEnv(space=AddressSpace(spec.n_sockets), domain=domain,
                   spec=spec, rng=random.Random(seed))
