"""Equation 1: the worst-case drop bound."""

import pytest

from repro.core.equation1 import (
    drop_from_conversion,
    figure6_series,
    worst_case_drop,
    worst_case_curve,
)


def test_paper_examples():
    """Figure 6's annotated points for delta = 43.75 ns."""
    # "the maximum performance drop that could be suffered by an IP flow
    # is 47%" at ~20.2M hits/sec.
    assert worst_case_drop(20.21e6) == pytest.approx(0.469, abs=0.01)
    # MON at 21.32M hits/sec: ~48%.
    assert worst_case_drop(21.32e6) == pytest.approx(0.483, abs=0.01)
    # FW at 2.13M hits/sec: ~9%.
    assert worst_case_drop(2.13e6) == pytest.approx(0.085, abs=0.01)


def test_zero_hits_means_zero_drop():
    assert worst_case_drop(0.0) == 0.0
    assert drop_from_conversion(1e7, kappa=0.0) == 0.0


def test_monotone_in_hits():
    drops = [worst_case_drop(h) for h in (1e6, 5e6, 20e6, 100e6)]
    assert drops == sorted(drops)
    assert all(0 <= d < 1 for d in drops)


def test_monotone_in_kappa():
    a = drop_from_conversion(20e6, kappa=0.3)
    b = drop_from_conversion(20e6, kappa=0.9)
    assert b > a
    assert drop_from_conversion(20e6, kappa=1.0) == worst_case_drop(20e6)


def test_monotone_in_delta():
    assert worst_case_drop(20e6, delta_ns=60.0) > \
        worst_case_drop(20e6, delta_ns=30.0)


def test_validation():
    with pytest.raises(ValueError):
        worst_case_drop(-1.0)
    with pytest.raises(ValueError):
        drop_from_conversion(1e6, kappa=1.5)
    with pytest.raises(ValueError):
        drop_from_conversion(1e6, kappa=0.5, delta_ns=0)


def test_curve_shape():
    curve = worst_case_curve(50e6, n_points=11)
    assert len(curve) == 11
    assert curve[0] == (0.0, 0.0)
    xs = [x for x, _ in curve]
    ys = [y for _, y in curve]
    assert xs == sorted(xs)
    assert ys == sorted(ys)


def test_curve_validation():
    with pytest.raises(ValueError):
        worst_case_curve(50e6, n_points=1)
    with pytest.raises(ValueError):
        worst_case_curve(0.0)


def test_figure6_series_has_all_deltas():
    series = figure6_series(30e6)
    assert set(series) == {30.0, 43.75, 60.0}
    # Larger delta curve dominates pointwise.
    for (_, lo), (_, hi) in zip(series[30.0], series[60.0]):
        assert hi >= lo
