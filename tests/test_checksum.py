"""Internet checksum (RFC 1071) and incremental update (RFC 1624)."""

import pytest
from hypothesis import given, strategies as st

from repro.net.checksum import (
    incremental_update16,
    internet_checksum,
    verify_checksum,
)


def test_known_vector_rfc1071():
    # Classic worked example: 0x0001f203f4f5f6f7 -> checksum 0x220d.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0x220D


def test_known_ipv4_header_vector():
    # Wikipedia's IPv4 checksum example.
    header = bytes.fromhex("4500003044224000800600008c7c590a14051e")
    # Insert the expected checksum field and verify it sums to zero.
    full = bytes.fromhex("450000304422400080060000" + "8c7c590a" + "14051e02")
    csum = internet_checksum(full)
    patched = full[:10] + csum.to_bytes(2, "big") + full[12:]
    assert verify_checksum(patched)


def test_zero_data():
    assert internet_checksum(b"\x00\x00") == 0xFFFF


def test_odd_length_padding():
    assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")


def test_verify_detects_corruption():
    data = bytearray(b"\x45\x00\x00\x1c\x00\x00\x00\x00\x40\x11\x00\x00")
    csum = internet_checksum(bytes(data))
    data[10:12] = csum.to_bytes(2, "big")
    assert verify_checksum(bytes(data))
    data[0] ^= 0xFF
    assert not verify_checksum(bytes(data))


@given(st.binary(min_size=2, max_size=64).filter(lambda b: len(b) % 2 == 0))
def test_property_checksum_verifies(data):
    csum = internet_checksum(data)
    # Appending the checksum as the final word makes the sum verify.
    assert verify_checksum(data + csum.to_bytes(2, "big"))


@given(st.binary(min_size=4, max_size=40).filter(lambda b: len(b) % 2 == 0),
       st.integers(min_value=0, max_value=0xFFFF))
def test_property_incremental_matches_recompute(data, new_word):
    """RFC 1624 incremental update equals recomputing from scratch.

    One's-complement arithmetic has two zeros; 0x0000 and 0xFFFF are the
    same checksum value (RFC 1624 Section 3), so the comparison is modulo
    that equivalence. For real IP headers the ambiguity never arises (the
    version byte is nonzero).
    """
    checksum = internet_checksum(data)
    old_word = (data[0] << 8) | data[1]
    updated = bytes([new_word >> 8, new_word & 0xFF]) + data[2:]
    incremental = incremental_update16(checksum, old_word, new_word)
    recomputed = internet_checksum(updated)
    assert incremental == recomputed or {incremental, recomputed} == {0, 0xFFFF}


def test_incremental_ttl_decrement():
    # The IP forwarding case: TTL 64 -> 63 with protocol 17.
    data = bytes([64, 17, 0xAB, 0xCD])
    checksum = internet_checksum(data)
    new = incremental_update16(checksum, (64 << 8) | 17, (63 << 8) | 17)
    assert new == internet_checksum(bytes([63, 17, 0xAB, 0xCD]))


def test_incremental_rejects_bad_inputs():
    with pytest.raises(ValueError):
        incremental_update16(0x10000, 0, 0)
    with pytest.raises(ValueError):
        incremental_update16(0, -1, 0)
    with pytest.raises(ValueError):
        incremental_update16(0, 0, 0x1FFFF)


# -- boundary cases -----------------------------------------------------------

def test_empty_data():
    # Empty sum is 0; the complement is all-ones. Nothing to verify.
    assert internet_checksum(b"") == 0xFFFF
    assert not verify_checksum(b"")


@pytest.mark.parametrize("n", [2, 4, 20, 63, 64])
def test_all_zero_words(n):
    # Zero data sums to zero regardless of length; complement is 0xFFFF.
    assert internet_checksum(b"\x00" * n) == 0xFFFF


@pytest.mark.parametrize("n", [2, 4, 20, 64])
def test_all_ones_words(n):
    # Each 0xFFFF word folds back to 0xFFFF; the complement is zero —
    # and all-ones data therefore verifies as its own checksum.
    assert internet_checksum(b"\xff" * n) == 0x0000
    assert verify_checksum(b"\xff" * n)


@pytest.mark.parametrize("n", [1, 3, 5, 19, 63])
def test_odd_lengths_equal_explicit_zero_pad(n):
    data = bytes(range(1, n + 1))
    assert internet_checksum(data) == internet_checksum(data + b"\x00")
    csum = internet_checksum(data)
    # Odd-length verify uses the same implicit pad.
    assert verify_checksum(data + b"\x00" + csum.to_bytes(2, "big"))


def test_incremental_noop_update_preserves_checksum():
    checksum = internet_checksum(bytes([64, 17, 0xAB, 0xCD]))
    for word in (0x0000, 0x0001, 0x8000, 0xFFFF):
        updated = incremental_update16(checksum, word, word)
        # One's complement has two zeros (0x0000 == 0xFFFF, RFC 1624 §3).
        assert updated == checksum or {updated, checksum} == {0, 0xFFFF}


def test_incremental_extreme_word_swap_matches_recompute():
    # 0x0000 <-> 0xFFFF transitions hit both ends of the fold.
    data = bytes([0x00, 0x00, 0x12, 0x34])
    checksum = internet_checksum(data)
    updated = incremental_update16(checksum, 0x0000, 0xFFFF)
    recomputed = internet_checksum(bytes([0xFF, 0xFF, 0x12, 0x34]))
    assert updated == recomputed or {updated, recomputed} == {0, 0xFFFF}
