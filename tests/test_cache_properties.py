"""Property-based invariants for the set-associative LRU cache model.

The properties hold for *any* access sequence, so they are checked two
ways: with `hypothesis` when the environment provides it (shrinking
counterexamples beats staring at a 400-line trace), and always with a
spread of seeded-random sequences so CI images without hypothesis still
exercise the same checkers.

Invariants under test:

* ``hits + misses`` equals the number of ``access()`` calls, across any
  interleaving with ``fill``/``probe``/``invalidate`` (which must not
  count references).
* No cache set ever holds more than ``ways`` lines — eviction is
  bounded by the associativity, and total occupancy by capacity.
* The model agrees exactly with an independent reference LRU.
* The warm solo hit rate of a cyclic sweep is monotonically
  non-increasing in the working-set size (the shape behind the paper's
  cache-sensitivity curves).
"""

from __future__ import annotations

import random

import pytest

from repro.constants import CACHE_LINE
from repro.hw.cache import SetAssociativeCache

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False


def small_cache() -> SetAssociativeCache:
    """4 sets x 4 ways — small enough that random traffic evicts."""
    return SetAssociativeCache(size=4 * 4 * CACHE_LINE, ways=4, name="t")


class ReferenceLRU:
    """Independent oracle: per-set list, LRU-first (mirrors the spec,
    not the implementation)."""

    def __init__(self, n_sets: int, ways: int):
        self.n_sets = n_sets
        self.ways = ways
        self.sets = {i: [] for i in range(n_sets)}

    def access(self, line: int) -> bool:
        s = self.sets[line % self.n_sets]
        hit = line in s
        if hit:
            s.remove(line)
        s.append(line)
        if len(s) > self.ways:
            del s[0]
        return hit

    def invalidate(self, line: int) -> None:
        s = self.sets[line % self.n_sets]
        if line in s:
            s.remove(line)


# ---------------------------------------------------------------------------
# Core checkers (shared by the hypothesis and the seeded-random paths).
# Each op is (kind, line) with kind in {"access", "fill", "probe", "inval"}.
# ---------------------------------------------------------------------------


def check_counter_conservation(ops) -> None:
    cache = small_cache()
    n_accesses = 0
    for kind, line in ops:
        if kind == "access":
            cache.access(line)
            n_accesses += 1
        elif kind == "fill":
            cache.fill(line)
        elif kind == "probe":
            cache.probe(line)
        else:
            cache.invalidate(line)
        assert cache.hits + cache.misses == n_accesses, (
            f"after {kind}({line}): hits({cache.hits}) + "
            f"misses({cache.misses}) != accesses({n_accesses})")
    cache.flush()
    assert cache.hits == cache.misses == 0
    assert cache.occupancy() == 0


def check_bounded_occupancy(ops) -> None:
    cache = small_cache()
    for kind, line in ops:
        if kind == "access":
            cache.access(line)
        elif kind == "fill":
            evicted = cache.fill(line)
            if evicted is not None:
                assert not cache.probe(evicted) or evicted % cache.n_sets \
                    != line % cache.n_sets, "evicted line still resident"
        elif kind == "probe":
            cache.probe(line)
        else:
            cache.invalidate(line)
        for s in cache.sets:
            assert len(s) <= cache.ways, (
                f"set overflow after {kind}({line}): {len(s)} > {cache.ways}")
        assert cache.occupancy() <= cache.capacity_lines


def check_against_oracle(ops) -> None:
    cache = small_cache()
    oracle = ReferenceLRU(cache.n_sets, cache.ways)
    for kind, line in ops:
        if kind == "access":
            assert cache.access(line) == oracle.access(line), (
                f"hit/miss disagreement at access({line})")
        elif kind == "fill":
            cache.fill(line)
            oracle.access(line)  # fill = access without counting
        elif kind == "probe":
            assert cache.probe(line) == (
                line in oracle.sets[line % oracle.n_sets])
        else:
            cache.invalidate(line)
            oracle.invalidate(line)
    assert sorted(cache.resident_lines()) == sorted(
        line for s in oracle.sets.values() for line in s)


CHECKERS = (check_counter_conservation, check_bounded_occupancy,
            check_against_oracle)

KINDS = ("access", "access", "access", "fill", "probe", "inval")


def random_ops(seed: int, n: int = 400, line_space: int = 48):
    rng = random.Random(seed)
    return [(rng.choice(KINDS), rng.randrange(line_space))
            for _ in range(n)]


# ---------------------------------------------------------------------------
# Seeded-random path: always runs.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("checker", CHECKERS, ids=lambda c: c.__name__)
@pytest.mark.parametrize("seed", [0, 1, 7, 12345, 999331])
def test_invariants_random(checker, seed):
    checker(random_ops(seed))


@pytest.mark.parametrize("checker", CHECKERS, ids=lambda c: c.__name__)
def test_invariants_adversarial(checker):
    """Same-set traffic: every op lands in set 0 (worst-case eviction)."""
    rng = random.Random(42)
    n_sets = small_cache().n_sets
    ops = [(rng.choice(KINDS), n_sets * rng.randrange(12))
           for _ in range(400)]
    checker(ops)


# ---------------------------------------------------------------------------
# Hypothesis path: richer sequences + shrinking, when available.
# ---------------------------------------------------------------------------

if HAVE_HYPOTHESIS:
    op_strategy = st.lists(
        st.tuples(st.sampled_from(KINDS), st.integers(0, 63)),
        max_size=300)

    @settings(max_examples=60, deadline=None)
    @given(ops=op_strategy)
    def test_counter_conservation_hypothesis(ops):
        check_counter_conservation(ops)

    @settings(max_examples=60, deadline=None)
    @given(ops=op_strategy)
    def test_bounded_occupancy_hypothesis(ops):
        check_bounded_occupancy(ops)

    @settings(max_examples=60, deadline=None)
    @given(ops=op_strategy)
    def test_oracle_agreement_hypothesis(ops):
        check_against_oracle(ops)


# ---------------------------------------------------------------------------
# Warm-sweep monotonicity: the cache-sensitivity shape.
# ---------------------------------------------------------------------------


def warm_hit_rate(cache: SetAssociativeCache, n_lines: int,
                  sweeps: int = 4) -> float:
    """Hit rate of cyclic sweeps over ``n_lines`` after one warmup sweep."""
    for line in range(n_lines):
        cache.access(line)
    cache.hits = cache.misses = 0
    for _ in range(sweeps):
        for line in range(n_lines):
            cache.access(line)
    return cache.hit_rate()


def test_warm_hit_rate_monotone_in_working_set():
    cap = small_cache().capacity_lines
    sizes = [1, cap // 4, cap // 2, cap, cap + cap // 4,
             2 * cap, 4 * cap]
    rates = [warm_hit_rate(small_cache(), n) for n in sizes]
    for n, hi, lo in zip(sizes, rates, rates[1:]):
        assert hi >= lo - 1e-12, (
            f"hit rate rose when working set grew past {n} lines: "
            f"{list(zip(sizes, rates))}")
    # The endpoints pin the curve: fits-in-cache => all hits,
    # LRU thrashing at 4x capacity => all misses.
    assert rates[0] == 1.0
    assert sizes[3] == cap and rates[3] == 1.0
    assert rates[-1] == 0.0


def test_warm_hit_rate_fits_iff_within_ways():
    """Any contiguous working set that keeps every set within its
    associativity is hit-only once warm, regardless of cache shape."""
    for ways, n_sets in [(1, 8), (2, 4), (8, 2), (4, 16)]:
        cache = SetAssociativeCache(size=ways * n_sets * CACHE_LINE,
                                    ways=ways, name="shape")
        assert warm_hit_rate(cache, cache.capacity_lines) == 1.0
        cache.flush()
        assert warm_hit_rate(cache, cache.capacity_lines + n_sets) < 1.0
