"""Cross-core handoff queues and pipelined flows (Section 2.2 substrate)."""

import pytest

from repro.apps.ipforward import DecIPTTL, RadixIPLookup
from repro.click.elements.checkipheader import CheckIPHeader
from repro.click.handoff import HandoffQueue, PipelineStage, build_pipelined_flow
from repro.hw.machine import Machine
from repro.hw.topology import PlatformSpec
from repro.mem.access import AccessContext
from repro.net.flowgen import UniformRandomTraffic
from repro.net.packet import Packet
from tests.conftest import make_env


class NullMachine:
    """Stands in for a Machine in functional queue tests."""

    def invalidate_private(self, lines, core):
        self.last = (list(lines), core)


def test_queue_fifo_roundtrip():
    q = HandoffQueue(capacity=4)
    q.initialize(make_env())
    m = NullMachine()
    ctx = AccessContext()
    assert q.push(ctx, "a", m)
    assert q.push(ctx, "b", m)
    assert q.pop(ctx, m) == "a"
    assert q.pop(ctx, m) == "b"
    assert q.pop(ctx, m) is None
    assert q.pushed == 2 and q.popped == 2


def test_queue_capacity():
    q = HandoffQueue(capacity=1)
    q.initialize(make_env())
    m = NullMachine()
    assert q.push(AccessContext(), 1, m)
    assert not q.push(AccessContext(), 2, m)
    assert q.full


def test_queue_pingpong_invalidates_consumer():
    q = HandoffQueue(capacity=4)
    q.initialize(make_env())
    q.consumer_core = 3
    m = NullMachine()
    q.push(AccessContext(), "x", m)
    lines, core = m.last
    assert core == 3
    assert lines  # slot + tail sync line


def test_queue_records_references():
    q = HandoffQueue(capacity=4)
    q.initialize(make_env())
    ctx = AccessContext()
    q.push(ctx, "x", NullMachine())
    assert ctx.n_references >= 3  # head probe, slot, tail


def test_queue_validation():
    with pytest.raises(ValueError):
        HandoffQueue(capacity=0)


def test_stage_requires_source_xor_upstream():
    with pytest.raises(ValueError):
        PipelineStage("s", [], source=None, upstream=None)


def test_pipelined_flow_end_to_end():
    spec = PlatformSpec.westmere().scaled(64)
    machine = Machine(spec)

    def source_factory(env):
        return UniformRandomTraffic(env.rng, payload_bytes=32,
                                    addr_bits=env.spec.address_bits)

    def stage0(env):
        el = [CheckIPHeader(), RadixIPLookup(n_routes=200)]
        for e in el:
            e.initialize(env)
        return el

    def stage1(env):
        el = [DecIPTTL()]
        for e in el:
            e.initialize(env)
        return el

    runs = build_pipelined_flow(machine, "p", source_factory,
                                [stage0, stage1], cores=[0, 1])
    assert len(runs) == 2
    assert runs[0].measured is False
    assert runs[1].measured is True
    result = machine.run(warmup_packets=50, measure_packets=300)
    last = result["p.s1"]
    assert last.packets == 300
    assert last.packets_per_sec > 0
    # Both stages did work.
    assert result["p.s0"].packets > 0


def test_pipelined_flow_validation():
    spec = PlatformSpec.westmere().scaled(64)
    machine = Machine(spec)
    with pytest.raises(ValueError):
        build_pipelined_flow(machine, "p", lambda env: None,
                             [lambda env: []], cores=[0])
    with pytest.raises(ValueError):
        build_pipelined_flow(machine, "p", lambda env: None,
                             [lambda env: [], lambda env: []], cores=[0])
