"""Access recording: programs, gaps, tags."""

import pytest

from repro.mem.access import AccessContext, TAGS, TAG_OTHER
from repro.mem.region import Region


def region(base=0, size=4096, domain=0):
    return Region(name="t", base=base, size=size, domain=domain)


def test_touch_records_line_and_gap():
    ctx = AccessContext()
    ctx.compute(100, 50)
    ctx.touch(region(base=256), 0, 4)
    assert ctx.references() == [(100, 4, TAG_OTHER)]
    assert ctx.instructions == 50


def test_gap_attaches_to_first_reference_only():
    ctx = AccessContext()
    ctx.compute(30, 10)
    ctx.touch(region(), 0, 200)  # spans 4 lines
    refs = ctx.references()
    assert [g for g, _, _ in refs] == [30, 0, 0, 0]
    assert [line for _, line, _ in refs] == [0, 1, 2, 3]


def test_touch_multiline_boundary():
    ctx = AccessContext()
    ctx.touch(region(), 60, 8)  # straddles line 0/1
    assert ctx.lines_touched() == [0, 1]


def test_touch_line_and_tags():
    tag = TAGS.register("test_tag_alpha")
    ctx = AccessContext()
    ctx.touch_line(77, tag)
    assert ctx.references() == [(0, 77, tag)]


def test_tag_registry_is_stable():
    a = TAGS.register("test_tag_stable")
    b = TAGS.register("test_tag_stable")
    assert a == b
    assert TAGS.name(a) == "test_tag_stable"
    assert "test_tag_stable" in TAGS


def test_finish_packet_moves_pending_to_trailing():
    ctx = AccessContext()
    ctx.touch(region(), 0, 1)
    ctx.compute(42, 5)
    ctx.finish_packet()
    assert ctx.trailing_gap == 42
    assert ctx.total_gap_cycles() == 42


def test_reset_clears_everything():
    ctx = AccessContext()
    ctx.compute(10, 10)
    ctx.touch(region(), 0, 1)
    ctx.mark_idle(5)
    ctx.reset()
    assert ctx.program == []
    assert ctx.instructions == 0
    assert ctx.trailing_gap == 0
    assert not ctx.is_idle


def test_mark_idle_requires_progress():
    ctx = AccessContext()
    with pytest.raises(ValueError):
        ctx.mark_idle(0)
    ctx.mark_idle(10)
    assert ctx.is_idle


def test_cost_pairs():
    ctx = AccessContext()
    ctx.cost((7, 3))
    ctx.cost((5, 2))
    ctx.touch(region(), 0, 1)
    assert ctx.references()[0][0] == 12
    assert ctx.instructions == 5


def test_touch_entry():
    ctx = AccessContext()
    ctx.touch_entry(region(), index=3, entry_bytes=64)
    assert ctx.lines_touched() == [3]


def test_n_references():
    ctx = AccessContext()
    for i in range(5):
        ctx.touch_line(i)
    assert ctx.n_references == 5


def test_program_layout_is_flat_ints():
    ctx = AccessContext()
    ctx.compute(9, 1)
    ctx.touch_line(123, 0)
    assert ctx.program == [9, 123, 0]
