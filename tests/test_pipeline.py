"""Pipelines (run-to-completion flows) and the Router configuration graph."""

import pytest

from repro.click.element import Element
from repro.click.elements.classifier import Classifier, Pattern
from repro.click.elements.counter import Counter
from repro.click.elements.discard import Discard
from repro.click.pipeline import Pipeline
from repro.click.router import Router
from repro.mem.access import AccessContext
from repro.net.flowgen import UniformRandomTraffic
from repro.net.packet import Packet
from tests.conftest import make_env


class Tagger(Element):
    """Marks packets so tests can observe element ordering."""

    def __init__(self, label):
        self.label = label

    def process(self, ctx, packet):
        ctx.compute(5, 5)
        marks = (packet.annotations or {}).setdefault("marks", [])
        marks.append(self.label)
        packet.annotations = packet.annotations or {"marks": marks}
        return packet


class DropAll(Element):
    def process(self, ctx, packet):
        ctx.compute(1, 1)
        return None


def make_pipeline(elements, env=None):
    env = env or make_env()
    return Pipeline(
        name="test", env=env,
        source=UniformRandomTraffic(env.rng, payload_bytes=32),
        elements=elements,
    )


def test_pipeline_runs_elements_in_order():
    pipe = make_pipeline([Tagger("a"), Tagger("b"), Tagger("c")])
    ctx = AccessContext()
    pipe.run_packet(ctx)
    # Use process_one to observe marks directly.
    pkt = Packet.udp(src=1, dst=2)
    pipe.process_one(AccessContext(), pkt)
    assert pkt.annotations["marks"] == ["a", "b", "c"]


def test_pipeline_counts_drops():
    pipe = make_pipeline([DropAll()])
    pipe.run_packet(AccessContext())
    assert pipe.dropped == 1
    assert pipe.tx.sent == 0


def test_pipeline_transmits_survivors():
    pipe = make_pipeline([Tagger("x")])
    pipe.run_packet(AccessContext())
    assert pipe.tx.sent == 1


def test_pipeline_returns_dma_lines():
    pipe = make_pipeline([])
    dma = pipe.run_packet(AccessContext())
    assert dma
    assert all(isinstance(line, int) for line in dma)


def test_pipeline_tuple_results_flow_through():
    pipe = make_pipeline([Classifier([Pattern(protocol=17)]), Tagger("t")])
    pipe.run_packet(AccessContext())
    assert pipe.tx.sent == 1


def test_process_one_skips_rx_tx():
    pipe = make_pipeline([Tagger("only")])
    pkt = Packet.udp(src=1, dst=2)
    out = pipe.process_one(AccessContext(), pkt)
    assert out is pkt
    assert pipe.tx.sent == 0


# -- Router ---------------------------------------------------------------------

def test_router_linear_path():
    r = Router()
    r.add("in", Tagger("in"))
    r.add("mid", Tagger("mid"))
    r.add("count", Counter())
    r.element("count").initialize(make_env())
    r.connect("in", "mid")
    r.connect("mid", "count")
    r.validate()
    pkt = Packet.udp(src=1, dst=2)
    end, out = r.push(AccessContext(), pkt, "in")
    assert end == "count"
    assert pkt.annotations["marks"] == ["in", "mid"]


def test_router_branches_by_classifier():
    r = Router()
    r.add("cls", Classifier([Pattern(protocol=6)]))
    r.add("tcp", Tagger("tcp"))
    r.add("other", Tagger("other"))
    r.connect("cls", "tcp", port=0)
    r.connect("cls", "other", port=1)
    r.validate()
    _, tcp_pkt = r.push(AccessContext(), Packet.tcp(src=1, dst=2), "cls")
    assert tcp_pkt.annotations["marks"] == ["tcp"]
    _, udp_pkt = r.push(AccessContext(), Packet.udp(src=1, dst=2), "cls")
    assert udp_pkt.annotations["marks"] == ["other"]


def test_router_drop_returns_none():
    r = Router()
    r.add("drop", Discard())
    assert r.push(AccessContext(), Packet.udp(src=1, dst=2), "drop") is None


def test_router_rejects_duplicate_names():
    r = Router()
    r.add("x", Tagger("x"))
    with pytest.raises(ValueError):
        r.add("x", Tagger("x2"))


def test_router_rejects_bad_connections():
    r = Router()
    r.add("a", Tagger("a"))
    with pytest.raises(ValueError):
        r.connect("a", "nope")
    with pytest.raises(ValueError):
        r.connect("nope", "a")
    with pytest.raises(ValueError):
        r.connect("a", "a", port=5)
    r.connect("a", "a")  # self-loop allowed structurally...
    with pytest.raises(ValueError):
        r.validate()      # ...but rejected as a cycle


def test_router_detects_open_ports():
    r = Router()
    r.add("cls", Classifier([Pattern(protocol=6)]))
    r.add("t", Tagger("t"))
    r.connect("cls", "t", port=0)
    with pytest.raises(ValueError, match="open"):
        r.validate()


def test_router_double_connection_rejected():
    r = Router()
    r.add("a", Tagger("a"))
    r.add("b", Tagger("b"))
    r.connect("a", "b")
    with pytest.raises(ValueError, match="already"):
        r.connect("a", "b")


def test_router_graph_summary():
    r = Router()
    r.add("a", Tagger("a"))
    r.add("b", Tagger("b"))
    r.connect("a", "b")
    assert r.graph_summary() == ["a[0] -> b"]
