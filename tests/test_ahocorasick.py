"""Aho-Corasick matcher against a brute-force reference."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.ahocorasick import AhoCorasick, generate_signatures


def brute_force(patterns, data):
    out = []
    for pos in range(1, len(data) + 1):
        for index, pattern in enumerate(patterns):
            if data[:pos].endswith(pattern):
                out.append((pos, index))
    return sorted(out)


def test_single_pattern():
    ac = AhoCorasick([b"abc"])
    assert ac.search(b"xxabcxxabc") == [(5, 0), (10, 0)]
    assert ac.search(b"ababab") == []


def test_overlapping_patterns():
    ac = AhoCorasick([b"he", b"she", b"his", b"hers"])
    matches = ac.search(b"ushers")
    assert sorted(matches) == [(4, 1), (4, 0), (6, 3)] or \
        sorted(matches) == sorted([(4, 0), (4, 1), (6, 3)])


def test_pattern_inside_pattern():
    ac = AhoCorasick([b"ab", b"abab"])
    assert sorted(ac.search(b"abab")) == [(2, 0), (4, 0), (4, 1)]


def test_contains_any_early_exit():
    ac = AhoCorasick([b"evil"])
    assert ac.contains_any(b"some evil payload")
    assert not ac.contains_any(b"innocent data")


def test_search_with_path_length():
    ac = AhoCorasick([b"xy"])
    matches, path = ac.search_with_path(b"aaxyaa")
    assert len(path) == 6
    assert matches == [(4, 0)]
    assert all(0 <= s < ac.n_states for s in path)


def test_validation():
    with pytest.raises(ValueError):
        AhoCorasick([])
    with pytest.raises(ValueError):
        AhoCorasick([b"ok", b""])


@given(
    patterns=st.lists(st.binary(min_size=1, max_size=4), min_size=1,
                      max_size=6, unique=True),
    data=st.binary(max_size=60),
)
@settings(max_examples=80, deadline=None)
def test_property_matches_brute_force(patterns, data):
    ac = AhoCorasick(patterns)
    assert sorted(ac.search(data)) == brute_force(patterns, data)


@given(st.binary(min_size=1, max_size=8), st.binary(max_size=30),
       st.binary(max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_planted_pattern_found(pattern, prefix, suffix):
    ac = AhoCorasick([pattern])
    matches = ac.search(prefix + pattern + suffix)
    assert any(index == 0 for _, index in matches)


def test_generate_signatures_unique_and_rare():
    rng = random.Random(5)
    signatures = generate_signatures(rng, 50, min_len=6, max_len=10)
    assert len(signatures) == len(set(signatures)) == 50
    assert all(sig[0] == 0xCC for sig in signatures)
    assert all(6 <= len(sig) <= 10 for sig in signatures)
    # Random payloads essentially never match.
    ac = AhoCorasick(signatures)
    hits = sum(ac.contains_any(rng.randbytes(256)) for _ in range(50))
    assert hits <= 1


def test_generate_signatures_validation():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        generate_signatures(rng, 0)
    with pytest.raises(ValueError):
        generate_signatures(rng, 5, min_len=0)
    with pytest.raises(ValueError):
        generate_signatures(rng, 5, min_len=9, max_len=8)
