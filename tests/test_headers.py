"""Header serialization round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.net.headers import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
)


def test_ethernet_roundtrip():
    eth = EthernetHeader(dst=0x001122334455, src=0xAABBCCDDEEFF,
                         ethertype=0x0800)
    packed = eth.pack()
    assert len(packed) == EthernetHeader.LENGTH
    again = EthernetHeader.unpack(packed)
    assert again == eth


def test_ipv4_pack_length_and_version():
    ip = IPv4Header(src=1, dst=2, total_length=40).finalize()
    packed = ip.pack()
    assert len(packed) == IPv4Header.LENGTH
    assert packed[0] == 0x45  # version 4, IHL 5


def test_ipv4_roundtrip():
    ip = IPv4Header(src=0x0A000001, dst=0xC0A80101, ttl=17, protocol=6,
                    total_length=52, identification=99, tos=4,
                    flags_fragment=0x4000).finalize()
    again = IPv4Header.unpack(ip.pack())
    assert again == ip


def test_ipv4_checksum_valid_after_finalize():
    ip = IPv4Header(src=3, dst=4, total_length=28).finalize()
    assert ip.is_valid()
    ip.ttl = 0
    assert not ip.is_valid()


def test_ipv4_unpack_rejects_non_v4():
    data = bytearray(IPv4Header().finalize().pack())
    data[0] = 0x65  # version 6
    with pytest.raises(ValueError):
        IPv4Header.unpack(bytes(data))


def test_ipv4_unpack_rejects_options():
    data = bytearray(IPv4Header().finalize().pack())
    data[0] = 0x46  # IHL 6
    with pytest.raises(ValueError):
        IPv4Header.unpack(bytes(data))


def test_udp_roundtrip():
    udp = UDPHeader(sport=53, dport=3333, length=20, checksum=0xBEEF)
    assert UDPHeader.unpack(udp.pack()) == udp
    assert len(udp.pack()) == UDPHeader.LENGTH


def test_tcp_roundtrip():
    tcp = TCPHeader(sport=80, dport=1024, seq=12345, ack=999, flags=0x18,
                    window=4096, checksum=7, urgent=0)
    assert TCPHeader.unpack(tcp.pack()) == tcp
    assert len(tcp.pack()) == TCPHeader.LENGTH


@given(
    src=st.integers(min_value=0, max_value=0xFFFFFFFF),
    dst=st.integers(min_value=0, max_value=0xFFFFFFFF),
    ttl=st.integers(min_value=1, max_value=255),
    proto=st.integers(min_value=0, max_value=255),
    length=st.integers(min_value=20, max_value=65535),
)
def test_property_ipv4_roundtrip(src, dst, ttl, proto, length):
    ip = IPv4Header(src=src, dst=dst, ttl=ttl, protocol=proto,
                    total_length=length).finalize()
    again = IPv4Header.unpack(ip.pack())
    assert again == ip
    assert again.is_valid()
