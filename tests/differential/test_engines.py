"""Differential suite: batch engine vs. the scalar oracle.

Every scenario from :func:`repro.fastpath.diff.generate_scenarios` runs
on the scalar engine and on the batch engine twice (cold stream cache,
then warm cache — the warm pass builds machines under the ambient batch
engine, so signatured flows exercise the construction-skipped skeleton
path too). End-of-run CoreCounters, tag breakdowns, clocks, events, and
per-flow drop counts must match *exactly*; derived rates to 1e-9
relative.
"""

from __future__ import annotations

import pytest

import repro.fastpath as fastpath
from repro.fastpath.diff import (
    DifferentialRunner,
    FlowSpec,
    Scenario,
    compare_results,
    generate_scenarios,
)

SCENARIOS = generate_scenarios()


def test_scenario_coverage():
    """The generator spans the ISSUE's required breadth."""
    assert len(SCENARIOS) >= 25
    names = [sc.name for sc in SCENARIOS]
    assert len(set(names)) == len(names), "scenario names must be unique"
    # Every registry app appears solo.
    from repro.apps.registry import APP_NAMES

    for app in APP_NAMES:
        assert f"solo-{app}" in names
    # Both topologies are present.
    assert any(sc.sockets == 2 for sc in SCENARIOS)
    assert any(sc.sockets == 1 for sc in SCENARIOS)
    # Throttling configurations are present.
    assert any("throttled" in n for n in names)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda sc: sc.name)
def test_engines_equivalent(scenario):
    runner = DifferentialRunner(clear_cache=True, scalar_dispatch=True)
    report = runner.run(scenario)
    assert report.ok, "\n" + report.summary()


def test_compare_results_detects_divergence():
    """The comparator itself must not be a rubber stamp."""
    scenario = Scenario(
        name="comparator-check",
        flows=(FlowSpec(_ip_factory(), core=0),),
    )
    ref_machine, ref_result = scenario.run("scalar")
    alt_machine, alt_result = scenario.run("scalar")
    assert not compare_results(ref_machine, ref_result,
                               alt_machine, alt_result)
    alt_machine.flows[0].counters.l3_refs += 1
    divergences = compare_results(ref_machine, ref_result,
                                  alt_machine, alt_result)
    assert any("l3_refs" in d for d in divergences)


def _ip_factory():
    from repro.apps.registry import app_factory

    return app_factory("IP")


def test_warm_pass_hits_cache():
    """The warm pass must actually replay from the stream cache."""
    scenario = Scenario(
        name="cache-check",
        flows=(FlowSpec(_ip_factory(), core=0),),
    )
    fastpath.clear_stream_cache()
    with fastpath.use_engine("batch"):
        scenario.run(engine=None)
        before = fastpath.stream_cache_stats()
        scenario.run(engine=None)
        after = fastpath.stream_cache_stats()
    assert after["hits"] > before["hits"]


def test_warm_pass_skips_construction():
    """A warm-cache machine built under ambient batch installs stubs."""
    scenario = Scenario(
        name="skeleton-check",
        flows=(FlowSpec(_ip_factory(), core=0),),
    )
    fastpath.clear_stream_cache()
    with fastpath.use_engine("batch"):
        scenario.run(engine=None)
        machine = scenario.build()
        assert type(machine.flows[0].flow).__name__ == "StubFlow"
        # The skeleton still produces scalar-exact results.
        result = machine.run(warmup_packets=scenario.warmup,
                             measure_packets=scenario.measure)
    ref_machine, ref_result = scenario.run("scalar")
    assert not compare_results(ref_machine, ref_result, machine, result)
