"""Wrapper-identity audit: the stream cache must never alias a wrapper.

The batch engine keys its skeleton/stream cache on ``name`` and
``stream_signature``. A wrapper flow (throttle, two-faced composite,
guard) that passes either through unchanged could be cached under — and
later served as — its bare inner flow, silently dropping the wrapper
behaviour on cache-warm runs. ``Machine.add_flow`` audits every
constructed flow against that; these are the regression tests.
"""

import pytest

from repro.apps.synthetic import syn_factory, syn_max_factory
from repro.core.throttling import TwoFacedFlow, throttled_factory
from repro.guard.wrappers import guarded_factory
from repro.hw.machine import Machine, _audit_wrapper_identity
from repro.hw.topology import PlatformSpec


def spec():
    return PlatformSpec.westmere().scaled(64)


class _NameStealingWrapper:
    """A buggy wrapper that forwards its inner flow's identity."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.stream_signature = None

    def run_packet(self, ctx):
        return self.inner.run_packet(ctx)


class _SignatureStealingWrapper:
    def __init__(self, inner):
        self.inner = inner
        self.name = f"wrapped({inner.name})"
        self.stream_signature = inner.stream_signature

    def run_packet(self, ctx):
        return self.inner.run_packet(ctx)


def test_add_flow_rejects_name_aliasing_wrapper():
    m = Machine(spec())
    with pytest.raises(ValueError, match="name"):
        m.add_flow(lambda env: _NameStealingWrapper(syn_factory()(env)),
                   core=0)


def test_add_flow_rejects_signature_aliasing_wrapper():
    m = Machine(spec())
    with pytest.raises(ValueError, match="stream signature"):
        m.add_flow(
            lambda env: _SignatureStealingWrapper(syn_factory()(env)),
            core=0)


class _UncacheableWrapper:
    """The correct shape: distinct name, never stream-cached."""

    stream_signature = None

    def __init__(self, inner):
        self.inner = inner
        self.name = f"wrapped({inner.name})"

    def run_packet(self, ctx):
        return self.inner.run_packet(ctx)


def test_audit_allows_uncacheable_wrappers():
    # stream_signature = None means "never cached": no aliasing risk,
    # even though the inner flow carries a real signature.
    m = Machine(spec())
    fr = m.add_flow(lambda env: _UncacheableWrapper(syn_factory()(env)),
                    core=0)
    assert fr.flow.name.startswith("wrapped(")


def test_shipped_wrappers_pass_the_audit():
    # Every wrapper in the tree must construct cleanly under the audit.
    m = Machine(spec())
    m.add_flow(throttled_factory(syn_factory(), target_refs_per_sec=1e6),
               core=0)
    m.add_flow(guarded_factory(syn_factory()), core=1)

    def two_faced(env):
        return TwoFacedFlow(syn_factory()(env), syn_max_factory()(env),
                            trigger_packets=10)

    m.add_flow(two_faced, core=2)
    names = [fr.flow.name for fr in m.flows]
    assert all(name.startswith(("throttled(", "guarded(", "twofaced("))
               for name in names)


def test_audit_ignores_flows_without_inners():
    class Plain:
        name = "plain"

        def run_packet(self, ctx):
            return None

    _audit_wrapper_identity(Plain())  # must not raise


def test_audit_checks_two_faced_personas():
    class Persona:
        def __init__(self, name):
            self.name = name
            self.stream_signature = ("syn", 1, 2)

        def run_packet(self, ctx):
            return None

    flow = TwoFacedFlow(Persona("i"), Persona("a"), trigger_packets=1)
    # TwoFacedFlow derives a composite signature: distinct, passes.
    assert flow.stream_signature != ("syn", 1, 2)
    _audit_wrapper_identity(flow)

    class BuggyComposite:
        """Forwards a persona's signature verbatim (the audited bug)."""

        def __init__(self, innocent, aggressive):
            self.innocent = innocent
            self.aggressive = aggressive
            self.name = "buggy"
            self.stream_signature = innocent.stream_signature

        def run_packet(self, ctx):
            return None

    with pytest.raises(ValueError, match="stream signature"):
        _audit_wrapper_identity(BuggyComposite(Persona("i"), Persona("a")))
