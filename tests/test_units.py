"""Unit-conversion helpers."""

import pytest

from repro import units


def test_sizes():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GB == 1024 ** 3


def test_ns_cycles_roundtrip():
    freq = 2.8e9
    assert units.ns_to_cycles(1.0, freq) == pytest.approx(2.8)
    assert units.cycles_to_ns(units.ns_to_cycles(43.75, freq), freq) == \
        pytest.approx(43.75)


def test_delta_in_cycles_matches_paper_platform():
    # 43.75 ns at 2.8 GHz is ~122.5 cycles.
    assert units.ns_to_cycles(43.75, 2.8e9) == pytest.approx(122.5)


def test_cycles_to_seconds():
    assert units.cycles_to_seconds(2.8e9, 2.8e9) == pytest.approx(1.0)


def test_per_second():
    assert units.per_second(100, 2.8e9, 2.8e9) == pytest.approx(100.0)
    assert units.per_second(100, 1.4e9, 2.8e9) == pytest.approx(200.0)


def test_per_second_empty_window():
    assert units.per_second(100, 0, 2.8e9) == 0.0
    assert units.per_second(100, -5, 2.8e9) == 0.0


def test_mega():
    assert units.mega(25_850_000) == pytest.approx(25.85)


@pytest.mark.parametrize("n, expected", [
    (64, "64B"),
    (2048, "2.0KB"),
    (12 * 1024 * 1024, "12.0MB"),
    (3 * 1024 ** 3, "3.0GB"),
])
def test_pretty_size(n, expected):
    assert units.pretty_size(n) == expected
